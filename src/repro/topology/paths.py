"""Router-level paths and the paper's ``...`` path patterns.

A :class:`Path` is a concrete sequence of adjacent routers.  A
:class:`PathPattern` is the pattern form used throughout the paper's
specification language: a sequence of router names interleaved with
``...`` wildcards, e.g. ``P1 -> ... -> P2``, where each wildcard
matches *zero or more* intermediate routers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from .graph import Topology, TopologyError

__all__ = ["Path", "PathPattern", "WILDCARD", "enumerate_simple_paths"]


class _Wildcard:
    """Singleton marker for the ``...`` pattern element."""

    _instance: Optional["_Wildcard"] = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "..."


WILDCARD = _Wildcard()

PatternElement = Union[str, _Wildcard]


@dataclass(frozen=True)
class Path:
    """A concrete router-level path (at least one router)."""

    hops: Tuple[str, ...]

    def __init__(self, hops: Sequence[str]) -> None:
        hops = tuple(hops)
        if not hops:
            raise ValueError("a path needs at least one hop")
        if len(set(hops)) != len(hops):
            raise ValueError(f"path revisits a router: {hops}")
        object.__setattr__(self, "hops", hops)

    @property
    def source(self) -> str:
        return self.hops[0]

    @property
    def target(self) -> str:
        return self.hops[-1]

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(zip(self.hops, self.hops[1:]))

    def reversed(self) -> "Path":
        return Path(tuple(reversed(self.hops)))

    def prefix_paths(self) -> Iterator["Path"]:
        """All non-empty prefixes, shortest first (including self)."""
        for end in range(1, len(self.hops) + 1):
            yield Path(self.hops[:end])

    def contains_edge(self, a: str, b: str) -> bool:
        return (a, b) in self.edges or (b, a) in self.edges

    def is_valid_in(self, topology: Topology) -> bool:
        """Whether every hop exists and consecutive hops are adjacent."""
        for hop in self.hops:
            if hop not in topology:
                return False
        return all(topology.has_link(a, b) for a, b in self.edges)

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self) -> Iterator[str]:
        return iter(self.hops)

    def __str__(self) -> str:
        return " -> ".join(self.hops)


@dataclass(frozen=True)
class PathPattern:
    """A path pattern with ``...`` wildcards.

    ``elements`` alternates router names and :data:`WILDCARD` markers.
    A wildcard matches zero or more routers; two consecutive wildcards
    are collapsed at construction.

    >>> pattern = PathPattern.of("P1", WILDCARD, "P2")
    >>> pattern.matches(Path(("P1", "R1", "R2", "P2")))
    True
    >>> pattern.matches(Path(("P1", "P2")))
    True
    >>> pattern.matches(Path(("P2", "R1", "P1")))
    False
    """

    elements: Tuple[PatternElement, ...]

    def __init__(self, elements: Sequence[PatternElement]) -> None:
        collapsed: List[PatternElement] = []
        for element in elements:
            if isinstance(element, _Wildcard) and collapsed and isinstance(collapsed[-1], _Wildcard):
                continue
            collapsed.append(element)
        if not collapsed:
            raise ValueError("empty path pattern")
        if not any(isinstance(e, str) for e in collapsed):
            raise ValueError("a path pattern needs at least one concrete router")
        object.__setattr__(self, "elements", tuple(collapsed))

    @classmethod
    def of(cls, *elements: PatternElement) -> "PathPattern":
        return cls(elements)

    @classmethod
    def exact(cls, *hops: str) -> "PathPattern":
        """A pattern with no wildcards."""
        return cls(hops)

    @property
    def is_concrete(self) -> bool:
        return all(isinstance(e, str) for e in self.elements)

    @property
    def concrete_routers(self) -> Tuple[str, ...]:
        return tuple(e for e in self.elements if isinstance(e, str))

    @property
    def source(self) -> Optional[str]:
        """The anchored first router, or None when starting with ``...``."""
        first = self.elements[0]
        return first if isinstance(first, str) else None

    @property
    def target(self) -> Optional[str]:
        last = self.elements[-1]
        return last if isinstance(last, str) else None

    def to_path(self) -> Path:
        if not self.is_concrete:
            raise ValueError(f"pattern {self} has wildcards")
        return Path(self.concrete_routers)

    def matches(self, path: Path) -> bool:
        """Whether the full hop sequence of ``path`` matches."""
        return _match(self.elements, path.hops)

    def matching_paths(self, topology: Topology, max_length: Optional[int] = None) -> Tuple[Path, ...]:
        """All simple paths in ``topology`` matching this pattern.

        Enumeration is anchored at the pattern's endpoints when they
        are concrete; otherwise all simple paths are scanned.
        """
        for router in self.concrete_routers:
            if router not in topology:
                raise TopologyError(f"pattern {self} names unknown router {router}")
        results: List[Path] = []
        sources = [self.source] if self.source else list(topology.router_names)
        targets = [self.target] if self.target else list(topology.router_names)
        for source in sources:
            for target in targets:
                if source == target:
                    candidate = Path((source,))
                    if self.matches(candidate):
                        results.append(candidate)
                    continue
                for path in enumerate_simple_paths(topology, source, target, max_length):
                    if self.matches(path):
                        results.append(path)
        unique = {path.hops: path for path in results}
        return tuple(unique[key] for key in sorted(unique))

    def reversed(self) -> "PathPattern":
        return PathPattern(tuple(reversed(self.elements)))

    def __str__(self) -> str:
        return " -> ".join("..." if isinstance(e, _Wildcard) else e for e in self.elements)


def _match(pattern: Tuple[PatternElement, ...], hops: Tuple[str, ...]) -> bool:
    """Wildcard matching via simple recursion with memoization."""
    memo = {}

    def go(pi: int, hi: int) -> bool:
        key = (pi, hi)
        if key in memo:
            return memo[key]
        if pi == len(pattern):
            result = hi == len(hops)
        elif isinstance(pattern[pi], _Wildcard):
            # Match zero hops, or consume one hop and stay on the wildcard.
            result = go(pi + 1, hi) or (hi < len(hops) and go(pi, hi + 1))
        elif hi < len(hops) and pattern[pi] == hops[hi]:
            result = go(pi + 1, hi + 1)
        else:
            result = False
        memo[key] = result
        return result

    return go(0, 0)


def enumerate_simple_paths(
    topology: Topology,
    source: str,
    target: str,
    max_length: Optional[int] = None,
) -> Iterator[Path]:
    """Yield every simple path from ``source`` to ``target``.

    ``max_length`` bounds the number of hops (routers) per path; the
    default explores all simple paths, which is fine for the scenario
    topologies and bounded explicitly in the scaling benchmarks.
    """
    if source not in topology:
        raise TopologyError(f"unknown router {source}")
    if target not in topology:
        raise TopologyError(f"unknown router {target}")
    limit = max_length if max_length is not None else len(topology)
    stack: List[str] = [source]
    on_stack = {source}

    def dfs() -> Iterator[Path]:
        current = stack[-1]
        if current == target:
            yield Path(tuple(stack))
            return
        if len(stack) >= limit:
            return
        for neighbor in topology.neighbors(current):
            if neighbor in on_stack:
                continue
            stack.append(neighbor)
            on_stack.add(neighbor)
            yield from dfs()
            stack.pop()
            on_stack.remove(neighbor)

    yield from dfs()
