"""Schema-versioned ``BENCH.json`` reports: write, load, append, compare.

This module owns the one on-disk format shared by the bench runner
(``python -m repro.cli bench``) and the pytest benchmark suite
(``benchmarks/conftest.py``):

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "source": "repro.cli bench",
      "quick": true,
      "repeat": 2,
      "calibration_s": 0.0123,
      "stages": [
        {"scenario": "scenario1", "stage": "seed", "runs": 6,
         "median_s": 0.004, "p95_s": 0.006, "total_s": 0.026,
         "counters": {"encode.candidates": 252, "sat.conflicts": 0}}
      ],
      "experiments": [
        {"title": "FIG-2 subspecification at R1", "rows": ["..."]}
      ]
    }

``calibration_s`` is the wall time of a fixed pure-Python workload
measured on the producing machine; :func:`compare_reports` uses the
ratio of calibrations to normalize baseline timings recorded on
different hardware before applying the regression tolerance.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "StageRecord",
    "Experiment",
    "BenchReport",
    "validate_report",
    "load_report",
    "write_report",
    "append_experiment",
    "StageVerdict",
    "CompareResult",
    "compare_reports",
]

SCHEMA_VERSION = "repro-bench/1"

#: Regressions smaller than this absolute wall-time delta are ignored;
#: micro-stage medians jitter far more than 25% between runs.
DEFAULT_MIN_DELTA_S = 0.02

#: Calibration ratios are clamped to this range so a corrupt
#: calibration cannot silence (or fabricate) a regression entirely.
_CALIBRATION_CLAMP = (0.25, 4.0)


class SchemaError(ValueError):
    """A document does not conform to the ``repro-bench`` schema."""


@dataclass
class StageRecord:
    """Aggregated timings and work counters for one pipeline stage."""

    scenario: str
    stage: str
    runs: int
    median_s: float
    p95_s: float
    total_s: float
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "stage": self.stage,
            "runs": self.runs,
            "median_s": self.median_s,
            "p95_s": self.p95_s,
            "total_s": self.total_s,
            "counters": dict(sorted(self.counters.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StageRecord":
        return cls(
            scenario=str(data["scenario"]),
            stage=str(data["stage"]),
            runs=int(data["runs"]),  # type: ignore[call-overload]
            median_s=float(data["median_s"]),  # type: ignore[arg-type]
            p95_s=float(data["p95_s"]),  # type: ignore[arg-type]
            total_s=float(data["total_s"]),  # type: ignore[arg-type]
            counters={
                str(name): int(value)
                for name, value in dict(data.get("counters") or {}).items()  # type: ignore[call-overload]
            },
        )


@dataclass
class Experiment:
    """One pytest-benchmark experiment table (title plus printed rows)."""

    title: str
    rows: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"title": self.title, "rows": list(self.rows)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Experiment":
        return cls(
            title=str(data["title"]),
            rows=[str(row) for row in list(data.get("rows") or [])],  # type: ignore[call-overload]
        )


@dataclass
class BenchReport:
    """The in-memory form of a ``BENCH.json`` document."""

    stages: List[StageRecord] = field(default_factory=list)
    experiments: List[Experiment] = field(default_factory=list)
    source: str = "repro.obs"
    quick: bool = False
    repeat: int = 1
    calibration_s: Optional[float] = None
    schema: str = SCHEMA_VERSION

    def stage(self, scenario: str, stage: str) -> Optional[StageRecord]:
        for record in self.stages:
            if record.scenario == scenario and record.stage == stage:
                return record
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "source": self.source,
            "quick": self.quick,
            "repeat": self.repeat,
            "calibration_s": self.calibration_s,
            "stages": [record.to_dict() for record in self.stages],
            "experiments": [experiment.to_dict() for experiment in self.experiments],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: object) -> "BenchReport":
        validate_report(data)
        assert isinstance(data, dict)
        calibration = data.get("calibration_s")
        return cls(
            stages=[StageRecord.from_dict(record) for record in data["stages"]],
            experiments=[
                Experiment.from_dict(experiment)
                for experiment in data.get("experiments", [])
            ],
            source=str(data.get("source", "unknown")),
            quick=bool(data.get("quick", False)),
            repeat=int(data.get("repeat", 1)),
            calibration_s=float(calibration) if calibration is not None else None,
            schema=str(data["schema"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def validate_report(data: object) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid report."""
    if not isinstance(data, dict):
        raise SchemaError(f"report must be a JSON object, got {type(data).__name__}")
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema {schema!r}; this build reads {SCHEMA_VERSION!r}"
        )
    stages = data.get("stages")
    if not isinstance(stages, list):
        raise SchemaError("report is missing the 'stages' list")
    for index, record in enumerate(stages):
        if not isinstance(record, dict):
            raise SchemaError(f"stages[{index}] must be an object")
        for key in ("scenario", "stage", "runs", "median_s", "p95_s", "total_s"):
            if key not in record:
                raise SchemaError(f"stages[{index}] is missing {key!r}")
        for key in ("runs", "median_s", "p95_s", "total_s"):
            if not isinstance(record[key], (int, float)) or isinstance(
                record[key], bool
            ):
                raise SchemaError(f"stages[{index}].{key} must be a number")
        counters = record.get("counters", {})
        if not isinstance(counters, dict):
            raise SchemaError(f"stages[{index}].counters must be an object")
    experiments = data.get("experiments", [])
    if not isinstance(experiments, list):
        raise SchemaError("'experiments' must be a list")
    for index, experiment in enumerate(experiments):
        if not isinstance(experiment, dict) or "title" not in experiment:
            raise SchemaError(f"experiments[{index}] must be an object with a title")


def load_report(path: str) -> BenchReport:
    """Load and validate a report from ``path``."""
    with open(path) as handle:
        return BenchReport.from_json(handle.read())


def write_report(report: BenchReport, path: str) -> None:
    """Write ``report`` to ``path`` (creating parent directories)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(report.to_json())


def append_experiment(
    path: str,
    title: str,
    rows: Sequence[str],
    source: str = "pytest-benchmarks",
) -> BenchReport:
    """Append one experiment table to the report at ``path``.

    The file is created (with ``source``) when missing or invalid, so
    a stale or foreign file never aborts a benchmark session.  An
    experiment with the same title is replaced, keeping re-runs of a
    benchmark module idempotent.  Returns the written report.
    """
    report: Optional[BenchReport] = None
    if os.path.exists(path):
        try:
            report = load_report(path)
        except (OSError, SchemaError):
            report = None
    if report is None:
        report = BenchReport(source=source)
    report.experiments = [
        experiment for experiment in report.experiments if experiment.title != title
    ]
    report.experiments.append(Experiment(title=title, rows=[str(row) for row in rows]))
    write_report(report, path)
    return report


# ----------------------------------------------------------------------
# Comparison / the regression gate
# ----------------------------------------------------------------------


@dataclass
class StageVerdict:
    """The comparison outcome for one (scenario, stage) pair.

    ``status`` is one of ``"ok"``, ``"improvement"``, ``"regression"``,
    ``"missing"`` (in the baseline but absent from the current report)
    or ``"new"`` (absent from the baseline).  ``baseline_s`` is the
    calibration-scaled baseline median.
    """

    scenario: str
    stage: str
    status: str
    baseline_s: Optional[float] = None
    current_s: Optional[float] = None
    ratio: Optional[float] = None

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing")

    def render(self) -> str:
        def fmt(value: Optional[float]) -> str:
            return f"{value * 1000:.1f}ms" if value is not None else "-"

        ratio = f"x{self.ratio:.2f}" if self.ratio is not None else "-"
        return (
            f"{self.status.upper():<12} {self.scenario}/{self.stage}: "
            f"{fmt(self.baseline_s)} -> {fmt(self.current_s)} ({ratio})"
        )


@dataclass
class CompareResult:
    """All stage verdicts of one baseline comparison."""

    verdicts: List[StageVerdict]
    tolerance: float
    scale: float

    @property
    def ok(self) -> bool:
        return not any(verdict.failed for verdict in self.verdicts)

    @property
    def regressions(self) -> List[StageVerdict]:
        return [verdict for verdict in self.verdicts if verdict.failed]

    def render(self) -> str:
        lines = [
            f"baseline comparison (tolerance {self.tolerance:.0%}, "
            f"calibration scale x{self.scale:.2f}):"
        ]
        for verdict in self.verdicts:
            lines.append("  " + verdict.render())
        lines.append("verdict: " + ("OK" if self.ok else "REGRESSION"))
        return "\n".join(lines)


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    tolerance: float = 0.25,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
) -> CompareResult:
    """Compare ``current`` against ``baseline`` stage by stage.

    A stage *regresses* when its median exceeds the (calibration-
    scaled) baseline median by more than ``tolerance`` relatively AND
    ``min_delta_s`` absolutely; it *improves* symmetrically.  A stage
    present in the baseline but missing from ``current`` fails the
    comparison (``"missing"``); stages new in ``current`` pass.
    """
    scale = 1.0
    if current.calibration_s and baseline.calibration_s:
        scale = current.calibration_s / baseline.calibration_s
        scale = max(_CALIBRATION_CLAMP[0], min(_CALIBRATION_CLAMP[1], scale))

    verdicts: List[StageVerdict] = []
    seen = set()
    for base in baseline.stages:
        seen.add((base.scenario, base.stage))
        record = current.stage(base.scenario, base.stage)
        expected = base.median_s * scale
        if record is None:
            verdicts.append(
                StageVerdict(base.scenario, base.stage, "missing", baseline_s=expected)
            )
            continue
        delta = record.median_s - expected
        ratio = record.median_s / expected if expected > 0 else None
        if delta > tolerance * expected and delta > min_delta_s:
            status = "regression"
        elif -delta > tolerance * expected and -delta > min_delta_s:
            status = "improvement"
        else:
            status = "ok"
        verdicts.append(
            StageVerdict(
                base.scenario,
                base.stage,
                status,
                baseline_s=expected,
                current_s=record.median_s,
                ratio=ratio,
            )
        )
    for record in current.stages:
        if (record.scenario, record.stage) not in seen:
            verdicts.append(
                StageVerdict(
                    record.scenario, record.stage, "new", current_s=record.median_s
                )
            )
    return CompareResult(verdicts=verdicts, tolerance=tolerance, scale=scale)
