"""Observability: span tracing, work metrics and BENCH.json export.

This package sits beside :mod:`repro.runtime` at the bottom of the
dependency stack (its core imports nothing from the rest of the
repository) and provides:

* :class:`Tracer` / :class:`Span` -- nested, exception-safe span
  timing on a monotonic clock,
* :class:`MetricsRegistry` -- counters, gauges and histograms with
  well-defined merge semantics,
* :class:`Instrumentation` -- the bundle the hot paths thread through
  (``obs: Optional[Instrumentation]``), with automatic stage
  attribution and a :class:`~repro.runtime.Governor` checkpoint
  piggyback,
* the schema-versioned ``BENCH.json`` exporter and the regression
  comparator behind ``python -m repro.cli bench``.

Everything here is passive: an instrumented run produces byte-identical
pipeline outputs to an uninstrumented one.  See
``docs/observability.md`` for the span/metric inventory and the JSON
schema.
"""

from .export import (
    BenchReport,
    CompareResult,
    Experiment,
    SCHEMA_VERSION,
    SchemaError,
    StageRecord,
    StageVerdict,
    append_experiment,
    compare_reports,
    load_report,
    validate_report,
    write_report,
)
from .expose import CONTENT_TYPE as METRICS_CONTENT_TYPE
from .expose import render_metrics, sanitize_metric_name
from .instrument import Instrumentation, SPAN_PREFIX
from .metrics import MetricsRegistry, percentile
from .tracer import Span, Tracer

__all__ = [
    "METRICS_CONTENT_TYPE",
    "render_metrics",
    "sanitize_metric_name",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "percentile",
    "Instrumentation",
    "SPAN_PREFIX",
    "SCHEMA_VERSION",
    "SchemaError",
    "StageRecord",
    "Experiment",
    "BenchReport",
    "validate_report",
    "load_report",
    "write_report",
    "append_experiment",
    "StageVerdict",
    "CompareResult",
    "compare_reports",
]
