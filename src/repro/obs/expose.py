"""Plain-text metrics exposition (the server's ``GET /v1/metrics``).

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the
Prometheus text exposition format, version ``0.0.4`` -- one
``name value`` sample per line, ``# TYPE`` comments, histograms as
summary quantiles.  Only the subset of the format the registry can
express is emitted; there are no timestamps and no labels except the
``quantile`` label on histogram summaries, so scraping the endpoint
twice during an idle server returns byte-identical bodies.

Metric names are sanitized to the exposition grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names
(``farm.store.hit.seed``) become underscored (``farm_store_hit_seed``)
with a ``repro_`` prefix to keep the namespace honest.
"""

from __future__ import annotations

from typing import List

from .metrics import MetricsRegistry, percentile

__all__ = ["CONTENT_TYPE", "render_metrics", "sanitize_metric_name"]

#: The content type scrapers expect for this body.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_ALLOWED = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def sanitize_metric_name(name: str) -> str:
    """``name`` rewritten into the exposition grammar, ``repro_``-prefixed."""
    cleaned = "".join(c if c in _ALLOWED else "_" for c in name)
    if not cleaned or cleaned[0] in "0123456789":
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def _format_value(value: float) -> str:
    # Integral floats print as integers so counters stay counters.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_metrics(metrics: MetricsRegistry) -> str:
    """The full text-exposition body for ``metrics``.

    Counters first, then gauges, then histogram summaries, each group
    name-sorted -- a deterministic function of the registry contents.
    """
    lines: List[str] = []
    for name in sorted(metrics.counters):
        exposed = sanitize_metric_name(name)
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {_format_value(metrics.counters[name])}")
    for name in sorted(metrics.gauges):
        exposed = sanitize_metric_name(name)
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(f"{exposed} {_format_value(metrics.gauges[name])}")
    for name in metrics.histogram_names:
        samples = metrics.samples(name)
        if not samples:
            continue
        exposed = sanitize_metric_name(name)
        lines.append(f"# TYPE {exposed} summary")
        for q in (0.5, 0.95):
            lines.append(
                f'{exposed}{{quantile="{q}"}} '
                f"{_format_value(percentile(samples, q))}"
            )
        lines.append(f"{exposed}_sum {_format_value(sum(samples))}")
        lines.append(f"{exposed}_count {len(samples)}")
    return "\n".join(lines) + "\n" if lines else ""
