"""Nested span tracing on a monotonic clock.

A :class:`Tracer` collects a forest of :class:`Span` objects.  Spans
are opened with the :meth:`Tracer.span` context manager, nest by
lexical scope, survive exceptions (an interrupted span is closed and
marked ``"error"``), and record wall-clock durations measured with
``time.perf_counter``.

The tracer is deliberately passive: opening a span never changes the
behaviour of the code it wraps, so an instrumented pipeline run
produces byte-identical outputs to an uninstrumented one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region of work, possibly with nested child spans."""

    __slots__ = ("name", "start", "end", "parent", "children", "status")

    def __init__(self, name: str, start: float, parent: Optional["Span"] = None) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.children: List["Span"] = []
        self.status = "ok"

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Wall-clock seconds; ``0.0`` while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable view of this span and its subtree."""
        return {
            "name": self.name,
            "duration_s": self.duration,
            "status": self.status,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return f"Span({self.name}, {state}, {self.status})"


class Tracer:
    """Collects nested spans; the innermost open span is ``current``.

    >>> tracer = Tracer()
    >>> with tracer.span("outer"):
    ...     with tracer.span("inner"):
    ...         pass
    >>> [root.name for root in tracer.roots]
    ['outer']
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a span named ``name`` for the duration of the block.

        The span is closed (its ``end`` stamped) even when the block
        raises; the exception also marks the span status ``"error"``
        before propagating.
        """
        span = Span(name, self._clock(), parent=self.current)
        if span.parent is not None:
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.end = self._clock()
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            elif span in self._stack:  # pragma: no cover - defensive
                self._stack.remove(span)

    def iter_spans(self) -> Iterator[Span]:
        """All spans, depth-first in creation order."""
        pending = list(reversed(self.roots))
        while pending:
            span = pending.pop()
            yield span
            pending.extend(reversed(span.children))

    def timings(self) -> Dict[str, float]:
        """Total closed-span duration per span name.

        Same-named spans are summed, so repeated stages aggregate the
        way the legacy ``ExplanationEngine.timings`` mapping did.
        """
        totals: Dict[str, float] = {}
        for span in self.iter_spans():
            if span.closed:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def to_dict(self) -> Dict[str, object]:
        return {"spans": [root.to_dict() for root in self.roots]}
