"""The :class:`Instrumentation` bundle threaded through the hot paths.

One ``Instrumentation`` pairs a :class:`~repro.obs.tracer.Tracer` with a
:class:`~repro.obs.metrics.MetricsRegistry` and adds *stage
attribution*: counters recorded while a span is open are prefixed with
the innermost span's name (``"lift:encode.candidates"``), so a single
registry localizes work to pipeline stages without any extra plumbing.

Every instrumented function takes ``obs: Optional[Instrumentation]``
and skips recording when it is ``None`` -- exactly the convention the
resource governor established -- so uninstrumented runs stay
byte-identical.  ``Instrumentation.watch`` additionally piggybacks on a
:class:`~repro.runtime.Governor`'s checkpoint seam, counting every
checkpoint as ``checkpoint.<stage>`` without touching the governed
loops again.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from .metrics import MetricsRegistry
from .tracer import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from ..runtime import Governor

__all__ = ["Instrumentation", "SPAN_PREFIX"]

#: Histogram-name prefix under which span durations are observed.
SPAN_PREFIX = "span:"


class Instrumentation:
    """A tracer plus a metrics registry with stage attribution."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a traced span and observe its duration as a histogram
        sample under ``span:<name>`` when it closes."""
        span: Optional[Span] = None
        try:
            with self.tracer.span(name) as span:
                yield span
        finally:
            if span is not None:
                self.metrics.observe(SPAN_PREFIX + name, span.duration)

    @property
    def stage(self) -> Optional[str]:
        """The innermost open span name, used as the counter prefix."""
        current = self.tracer.current
        return current.name if current is not None else None

    # ------------------------------------------------------------------
    # Metrics (stage-attributed)
    # ------------------------------------------------------------------

    def _qualified(self, name: str) -> str:
        stage = self.stage
        return f"{stage}:{name}" if stage is not None else name

    def count(self, name: str, amount: int = 1) -> int:
        """Count ``amount`` under ``<stage>:<name>`` (or bare ``name``
        outside any span)."""
        return self.metrics.count(self._qualified(name), amount)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(self._qualified(name), value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(self._qualified(name), value)

    # ------------------------------------------------------------------
    # Governor piggyback
    # ------------------------------------------------------------------

    def watch(self, governor: "Governor") -> None:
        """Subscribe to ``governor``'s checkpoint seam.

        Every ``Governor.checkpoint(stage, amount)`` is then counted as
        ``checkpoint.<stage>`` (stage-attributed like any counter), so
        code already threaded with a governor reports work units with
        no further changes.
        """
        governor.observer = self._on_checkpoint

    def _on_checkpoint(self, stage: str, amount: int) -> None:
        self.count(f"checkpoint.{stage}", amount)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Instrumentation(stage={self.stage!r}, {self.metrics!r})"
