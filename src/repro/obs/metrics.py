"""Counters, gauges and histograms for pipeline work accounting.

A :class:`MetricsRegistry` is a plain in-process store with three
instrument kinds:

* **counters** -- monotonically accumulated integers (SAT conflicts,
  rewrite-rule firings, models enumerated, cache hits, ...),
* **gauges** -- last-writer-wins floats (sizes, ratios),
* **histograms** -- raw observation lists from which summary statistics
  (median, p95, ...) are computed on demand.

Merge semantics (used by the bench runner to fold per-iteration
registries into one): counters add, gauges take the merged-in value,
histograms concatenate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["MetricsRegistry", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` with linear interpolation.

    ``q`` is a fraction in ``[0, 1]`` (``0.5`` = median).  Raises
    :class:`ValueError` on an empty sample set.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


class MetricsRegistry:
    """In-process counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name``; returns the new value."""
        value = self.counters.get(name, 0) + amount
        self.counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last writer wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        self._histograms.setdefault(name, []).append(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def samples(self, name: str) -> Tuple[float, ...]:
        """The raw observations of histogram ``name`` (empty if unknown)."""
        return tuple(self._histograms.get(name, ()))

    @property
    def histogram_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._histograms))

    def histogram_stats(self, name: str) -> Dict[str, float]:
        """Summary statistics of histogram ``name``.

        Returns ``count``, ``min``, ``max``, ``mean``, ``p50`` and
        ``p95``; raises :class:`KeyError` for an unknown histogram.
        """
        samples = self._histograms.get(name)
        if not samples:
            raise KeyError(f"unknown or empty histogram {name!r}")
        return {
            "count": float(len(samples)),
            "min": min(samples),
            "max": max(samples),
            "mean": sum(samples) / len(samples),
            "p50": percentile(samples, 0.50),
            "p95": percentile(samples, 0.95),
        }

    # ------------------------------------------------------------------
    # Merge + export
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry; returns ``self``.

        Counters add, gauges take ``other``'s value, histograms
        concatenate (``other``'s samples appended after this one's).
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, samples in other._histograms.items():
            self._histograms.setdefault(name, []).extend(samples)
        return self

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of every instrument."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histogram_stats(name) for name in self.histogram_names
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self._histograms)} histograms)"
        )
