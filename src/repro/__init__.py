"""Localized explanations for automatically synthesized network
configurations -- a reproduction of the HotNets '24 paper.

Package map
-----------
``repro.smt``        constraint substrate (terms, 15-rule rewriting, CDCL)
``repro.topology``   routers, links, prefixes, paths, patterns
``repro.bgp``        announcements, route-maps, decision process, simulator
``repro.spec``       the NetComplete-style path-requirement DSL
``repro.synthesis``  constraint-based configuration synthesis
``repro.explain``    the paper's contribution: localized subspecifications
``repro.verify``     global verification + modular subspec validation
``repro.scenarios``  the paper's case study and synthetic generators

Quickstart::

    from repro.scenarios import scenario1
    from repro.explain import ExplanationEngine

    scenario = scenario1()
    engine = ExplanationEngine(scenario.paper_config, scenario.specification)
    explanation = engine.explain_router("R1", requirement="Req1")
    print(explanation.report())
"""

from .explain import ExplanationEngine, Explanation, ExplanationStatus, Subspecification
from .mining import MiningResult, mine_specification
from .runtime import (
    Cancelled,
    CancelToken,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    Governor,
    ReproError,
    ResourceExhausted,
    WorkBudget,
)
from .scenarios import scenario1, scenario2, scenario3
from .spec import Specification, parse
from .synthesis import Synthesizer, synthesize
from .verify import verify

__version__ = "0.1.0"

__all__ = [
    "ExplanationEngine",
    "Explanation",
    "ExplanationStatus",
    "Subspecification",
    "ReproError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "Cancelled",
    "Deadline",
    "WorkBudget",
    "CancelToken",
    "Governor",
    "FaultPlan",
    "mine_specification",
    "MiningResult",
    "Synthesizer",
    "synthesize",
    "verify",
    "Specification",
    "parse",
    "scenario1",
    "scenario2",
    "scenario3",
    "__version__",
]
