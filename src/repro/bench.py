"""The reproducible benchmark runner behind ``python -m repro.cli bench``.

Runs the paper's scenario suite end to end (synthesis, verification,
simulation and the four-stage explanation pipeline) under a fresh
:class:`~repro.obs.Instrumentation` per iteration, aggregates wall-time
medians/p95s plus work counters per pipeline stage, and packages the
result as a schema-versioned :class:`~repro.obs.BenchReport`
(``BENCH.json``).

Timings come from the spans the pipeline already opens; work counters
come from the stage-attributed metrics the hot paths already record.
The runner adds no instrumentation of its own beyond three outer spans
(``synth``, ``verify``, ``simulate``) and an ``explain`` wrapper.

``measure_calibration`` times a fixed pure-Python workload on the
producing machine; the comparator uses the ratio of calibrations to
normalize baselines recorded on different hardware (a checked-in
baseline from a fast dev box must not fail CI on a slow runner).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from .explain import ACTION, ExplanationEngine
from .obs import (
    BenchReport,
    Instrumentation,
    MetricsRegistry,
    SPAN_PREFIX,
    StageRecord,
    percentile,
)
from .scenarios import Scenario, scenario1, scenario2, scenario3
from .synthesis import Synthesizer
from .verify import verify

__all__ = [
    "BENCH_FAMILIES",
    "SCENARIO_BUILDERS",
    "measure_calibration",
    "run_perline_once",
    "run_scenario_once",
    "run_bench",
    "format_report",
]

#: The scenario suite the bench runs, in execution order.
SCENARIO_BUILDERS: Dict[str, Callable[[], Scenario]] = {
    "scenario1": scenario1,
    "scenario2": scenario2,
    "scenario3": scenario3,
}

#: Bench families: ``pipeline`` is the classic end-to-end pass
#: (synth/verify/simulate/explain); ``perline`` measures the cold
#: per-line batch under family dispatch against per-job dispatch.
BENCH_FAMILIES = ("pipeline", "perline")

QUICK_REPEAT = 2
FULL_REPEAT = 5


def _calibration_workload() -> int:
    """A fixed, allocation-free integer workload (~tens of ms)."""
    total = 7
    for i in range(200_000):
        total = (total * 1103515245 + i) % 2_147_483_647
    return total


def measure_calibration(repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of the calibration workload."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _calibration_workload()
        best = min(best, time.perf_counter() - start)
    return best


def run_scenario_once(scenario: Scenario, obs: Instrumentation) -> None:
    """One full pipeline pass over ``scenario``, recorded into ``obs``.

    Stages: ``synth`` (sketch -> concrete config), ``verify`` (paper
    config against the specification), ``simulate`` (control-plane
    fixpoint), ``explain`` (every managed router, per requirement
    block; the engine's own ``seed``/``simplify``/``project``/``lift``
    spans nest inside it).
    """
    with obs.span("synth"):
        Synthesizer(scenario.sketch, scenario.specification, obs=obs).synthesize()
    with obs.span("verify"):
        verify(scenario.paper_config, scenario.specification)
    with obs.span("simulate"):
        from .bgp.simulation import simulate

        simulate(scenario.paper_config, obs=obs)
    engine = ExplanationEngine(
        scenario.paper_config, scenario.specification, obs=obs
    )
    with obs.span("explain"):
        for block in scenario.specification.blocks:
            for router in sorted(scenario.specification.managed):
                try:
                    engine.explain_router(
                        router, fields=(ACTION,), requirement=block.name
                    )
                except Exception:
                    # Routers without explainable lines (mirrors the
                    # `report` command); never part of the timing story.
                    continue


def run_perline_once(scenario: Scenario) -> "_PerlineSample":
    """One cold per-line batch, per-job then family-dispatched.

    Both runs are fully cold: no artifact store, and the process's
    shared-cache slot is dropped first so no family SAT session or
    seed encode survives from a previous iteration.  Answers and cache
    keys must be byte-identical between the two dispatch modes --
    a mismatch fails the bench rather than timing a wrong answer.
    """
    from .farm.job import enumerate_jobs
    from .farm.keys import canonical_json
    from .farm.pool import run_batch
    from .farm.worker import reset_shared_slot

    config, spec = scenario.paper_config, scenario.specification
    jobs = enumerate_jobs(config, spec, per_line=True)

    def answers(report):
        return {
            result.job.job_id: canonical_json({**result.explanation, "timings": {}})
            for result in report.results
        }

    reset_shared_slot()
    solo = run_batch(config, spec, jobs, cache_dir=None, share=False)
    reset_shared_slot()
    shared = run_batch(config, spec, jobs, cache_dir=None, share=True)
    reset_shared_slot()
    if answers(solo) != answers(shared):
        raise RuntimeError("family dispatch changed an answer payload")
    if [r.key for r in solo.results] != [r.key for r in shared.results]:
        raise RuntimeError("family dispatch changed a cache key")
    counters = {
        name: value
        for name, value in shared.metrics.counters.items()
        if name.startswith(("smt.session.", "farm.families"))
    }
    return _PerlineSample(solo.wall_s, shared.wall_s, counters)


class _PerlineSample:
    """Wall times and session counters of one cold per-line iteration."""

    def __init__(self, solo_s: float, shared_s: float, counters: Dict[str, int]):
        self.solo_s = solo_s
        self.shared_s = shared_s
        self.counters = counters


def _perline_records(
    scenario_name: str,
    samples: Sequence[_PerlineSample],
) -> List[StageRecord]:
    """Two records per scenario: family dispatch and the per-job control.

    ``perline`` (the gated stage) is the cold wall time of the
    family-dispatched batch; ``perline.solo`` is per-job dispatch over
    the same jobs, so the speedup is the ratio of the two medians.
    Counters are totalled over all runs, like every other stage.
    """
    shared = [sample.shared_s for sample in samples]
    solo = [sample.solo_s for sample in samples]
    counters: Dict[str, int] = {}
    for sample in samples:
        for name, value in sample.counters.items():
            counters[name] = counters.get(name, 0) + value
    return [
        StageRecord(
            scenario=scenario_name,
            stage="perline",
            runs=len(samples),
            median_s=percentile(shared, 0.50),
            p95_s=percentile(shared, 0.95),
            total_s=sum(shared),
            counters=counters,
        ),
        StageRecord(
            scenario=scenario_name,
            stage="perline.solo",
            runs=len(samples),
            median_s=percentile(solo, 0.50),
            p95_s=percentile(solo, 0.95),
            total_s=sum(solo),
            counters={},
        ),
    ]


def _stage_records(scenario_name: str, merged: MetricsRegistry) -> List[StageRecord]:
    """Per-stage records from the merged per-iteration registries.

    One record per ``span:<stage>`` histogram; its counters are the
    stage-attributed counters with the ``<stage>:`` prefix stripped,
    totalled over *all* runs (the pipeline is deterministic, so
    per-run work is the total divided by ``runs``).
    """
    records: List[StageRecord] = []
    for name in merged.histogram_names:
        if not name.startswith(SPAN_PREFIX):
            continue
        stage = name[len(SPAN_PREFIX):]
        samples = merged.samples(name)
        counters = {
            counter[len(stage) + 1:]: value
            for counter, value in merged.counters.items()
            if counter.startswith(stage + ":")
        }
        records.append(
            StageRecord(
                scenario=scenario_name,
                stage=stage,
                runs=len(samples),
                median_s=percentile(samples, 0.50),
                p95_s=percentile(samples, 0.95),
                total_s=sum(samples),
                counters=counters,
            )
        )
    records.sort(key=lambda record: record.stage)
    return records


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    repeat: Optional[int] = None,
    quick: bool = False,
    families: Optional[Sequence[str]] = None,
) -> BenchReport:
    """Run the suite and return the aggregated report.

    ``scenarios`` defaults to the full suite; ``repeat`` defaults to
    2 iterations in ``--quick`` mode and 5 otherwise; ``families``
    defaults to every family in :data:`BENCH_FAMILIES`.
    """
    names = list(scenarios) if scenarios else list(SCENARIO_BUILDERS)
    for name in names:
        if name not in SCENARIO_BUILDERS:
            known = ", ".join(sorted(SCENARIO_BUILDERS))
            raise ValueError(f"unknown bench scenario {name!r}; known: {known}")
    chosen = list(families) if families else list(BENCH_FAMILIES)
    for family in chosen:
        if family not in BENCH_FAMILIES:
            known = ", ".join(BENCH_FAMILIES)
            raise ValueError(f"unknown bench family {family!r}; known: {known}")
    runs = repeat if repeat is not None else (QUICK_REPEAT if quick else FULL_REPEAT)
    if runs < 1:
        raise ValueError(f"repeat must be positive, got {runs}")

    stages: List[StageRecord] = []
    for name in names:
        scenario = SCENARIO_BUILDERS[name]()
        if "pipeline" in chosen:
            merged = MetricsRegistry()
            for _ in range(runs):
                obs = Instrumentation()
                run_scenario_once(scenario, obs)
                merged.merge(obs.metrics)
            stages.extend(_stage_records(name, merged))
        if "perline" in chosen:
            samples = [run_perline_once(scenario) for _ in range(runs)]
            stages.extend(_perline_records(name, samples))

    return BenchReport(
        stages=stages,
        source="repro.cli bench",
        quick=quick,
        repeat=runs,
        calibration_s=measure_calibration(),
    )


#: Counters surfaced in the rendered table (full set stays in the JSON).
_HEADLINE_COUNTERS = (
    "sat.conflicts",
    "sat.propagations",
    "rewrite.steps",
    "encode.candidates",
    "project.assignments",
    "lift.candidates_evaluated",
    "simulate.rounds",
    "farm.families",
    "smt.session.instances",
    "smt.session.reuse",
)


def format_report(report: BenchReport) -> str:
    """Render ``report`` as the table the CLI prints."""
    lines = [
        f"bench: {report.repeat} run(s) per scenario"
        + (" [quick]" if report.quick else "")
        + (
            f", calibration {report.calibration_s * 1000:.1f}ms"
            if report.calibration_s is not None
            else ""
        )
    ]
    header = f"{'scenario':<12} {'stage':<10} {'runs':>4} {'median':>9} {'p95':>9} {'total':>9}  work"
    lines.append(header)
    lines.append("-" * len(header))
    for record in report.stages:
        work = ", ".join(
            f"{counter.split('.', 1)[1]}={record.counters[counter]}"
            for counter in _HEADLINE_COUNTERS
            if counter in record.counters
        )
        lines.append(
            f"{record.scenario:<12} {record.stage:<10} {record.runs:>4} "
            f"{record.median_s * 1000:>7.1f}ms {record.p95_s * 1000:>7.1f}ms "
            f"{record.total_s * 1000:>7.1f}ms  {work}"
        )
    return "\n".join(lines)
