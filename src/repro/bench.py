"""The reproducible benchmark runner behind ``python -m repro.cli bench``.

Runs the paper's scenario suite end to end (synthesis, verification,
simulation and the four-stage explanation pipeline) under a fresh
:class:`~repro.obs.Instrumentation` per iteration, aggregates wall-time
medians/p95s plus work counters per pipeline stage, and packages the
result as a schema-versioned :class:`~repro.obs.BenchReport`
(``BENCH.json``).

Timings come from the spans the pipeline already opens; work counters
come from the stage-attributed metrics the hot paths already record.
The runner adds no instrumentation of its own beyond three outer spans
(``synth``, ``verify``, ``simulate``) and an ``explain`` wrapper.

``measure_calibration`` times a fixed pure-Python workload on the
producing machine; the comparator uses the ratio of calibrations to
normalize baselines recorded on different hardware (a checked-in
baseline from a fast dev box must not fail CI on a slow runner).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from .explain import ACTION, ExplanationEngine
from .obs import (
    BenchReport,
    Instrumentation,
    MetricsRegistry,
    SPAN_PREFIX,
    StageRecord,
    percentile,
)
from .scenarios import Scenario, scenario1, scenario2, scenario3
from .synthesis import Synthesizer
from .verify import verify

__all__ = [
    "BENCH_FAMILIES",
    "SCENARIO_BUILDERS",
    "measure_calibration",
    "run_perline_once",
    "run_scenario_once",
    "run_serve_once",
    "run_bench",
    "format_report",
]

#: The scenario suite the bench runs, in execution order.
SCENARIO_BUILDERS: Dict[str, Callable[[], Scenario]] = {
    "scenario1": scenario1,
    "scenario2": scenario2,
    "scenario3": scenario3,
}

#: Bench families: ``pipeline`` is the classic end-to-end pass
#: (synth/verify/simulate/explain); ``perline`` measures the cold
#: per-line batch under family dispatch against per-job dispatch;
#: ``serve`` pushes a multi-tenant concurrent workload through the
#: serving queue on a warm worker fleet against the FIFO +
#: per-batch-pool path; ``audit`` times the adversarial audit stage on
#: a cold verdict cache against a warm (content-addressed) one.
BENCH_FAMILIES = ("pipeline", "perline", "serve", "audit")

QUICK_REPEAT = 2
FULL_REPEAT = 5

#: The serve family's workload shape: K tenants each submitting B
#: batches concurrently (the issue's 4-tenant contention scenario).
SERVE_TENANTS = 4
SERVE_BATCHES_PER_TENANT = 2
#: Fleet size and per-batch worker cap for the serve family.
SERVE_FLEET_WORKERS = 4
SERVE_BATCH_WORKERS = 2


def _calibration_workload() -> int:
    """A fixed, allocation-free integer workload (~tens of ms)."""
    total = 7
    for i in range(200_000):
        total = (total * 1103515245 + i) % 2_147_483_647
    return total


def measure_calibration(repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of the calibration workload."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _calibration_workload()
        best = min(best, time.perf_counter() - start)
    return best


def run_scenario_once(scenario: Scenario, obs: Instrumentation) -> None:
    """One full pipeline pass over ``scenario``, recorded into ``obs``.

    Stages: ``synth`` (sketch -> concrete config), ``verify`` (paper
    config against the specification), ``simulate`` (control-plane
    fixpoint), ``explain`` (every managed router, per requirement
    block; the engine's own ``seed``/``simplify``/``project``/``lift``
    spans nest inside it).
    """
    with obs.span("synth"):
        Synthesizer(scenario.sketch, scenario.specification, obs=obs).synthesize()
    with obs.span("verify"):
        verify(scenario.paper_config, scenario.specification)
    with obs.span("simulate"):
        from .bgp.simulation import simulate

        simulate(scenario.paper_config, obs=obs)
    engine = ExplanationEngine(
        scenario.paper_config, scenario.specification, obs=obs
    )
    with obs.span("explain"):
        for block in scenario.specification.blocks:
            for router in sorted(scenario.specification.managed):
                try:
                    engine.explain_router(
                        router, fields=(ACTION,), requirement=block.name
                    )
                except Exception:
                    # Routers without explainable lines (mirrors the
                    # `report` command); never part of the timing story.
                    continue


def run_perline_once(scenario: Scenario) -> "_PerlineSample":
    """One cold per-line batch, per-job then family-dispatched.

    Both runs are fully cold: no artifact store, and the process's
    shared-cache slot is dropped first so no family SAT session or
    seed encode survives from a previous iteration.  Answers and cache
    keys must be byte-identical between the two dispatch modes --
    a mismatch fails the bench rather than timing a wrong answer.
    """
    from .farm.job import enumerate_jobs
    from .farm.keys import canonical_json
    from .farm.pool import run_batch
    from .farm.worker import reset_shared_slot

    config, spec = scenario.paper_config, scenario.specification
    jobs = enumerate_jobs(config, spec, per_line=True)

    def answers(report):
        return {
            result.job.job_id: canonical_json({**result.explanation, "timings": {}})
            for result in report.results
        }

    reset_shared_slot()
    solo = run_batch(config, spec, jobs, cache_dir=None, share=False)
    reset_shared_slot()
    shared = run_batch(config, spec, jobs, cache_dir=None, share=True)
    reset_shared_slot()
    if answers(solo) != answers(shared):
        raise RuntimeError("family dispatch changed an answer payload")
    if [r.key for r in solo.results] != [r.key for r in shared.results]:
        raise RuntimeError("family dispatch changed a cache key")
    counters = {
        name: value
        for name, value in shared.metrics.counters.items()
        if name.startswith(("smt.session.", "farm.families"))
    }
    return _PerlineSample(solo.wall_s, shared.wall_s, counters)


class _PerlineSample:
    """Wall times and session counters of one cold per-line iteration."""

    def __init__(self, solo_s: float, shared_s: float, counters: Dict[str, int]):
        self.solo_s = solo_s
        self.shared_s = shared_s
        self.counters = counters


def _perline_records(
    scenario_name: str,
    samples: Sequence[_PerlineSample],
) -> List[StageRecord]:
    """Two records per scenario: family dispatch and the per-job control.

    ``perline`` (the gated stage) is the cold wall time of the
    family-dispatched batch; ``perline.solo`` is per-job dispatch over
    the same jobs, so the speedup is the ratio of the two medians.
    Counters are totalled over all runs, like every other stage.
    """
    shared = [sample.shared_s for sample in samples]
    solo = [sample.solo_s for sample in samples]
    counters: Dict[str, int] = {}
    for sample in samples:
        for name, value in sample.counters.items():
            counters[name] = counters.get(name, 0) + value
    return [
        StageRecord(
            scenario=scenario_name,
            stage="perline",
            runs=len(samples),
            median_s=percentile(shared, 0.50),
            p95_s=percentile(shared, 0.95),
            total_s=sum(shared),
            counters=counters,
        ),
        StageRecord(
            scenario=scenario_name,
            stage="perline.solo",
            runs=len(samples),
            median_s=percentile(solo, 0.50),
            p95_s=percentile(solo, 0.95),
            total_s=sum(solo),
            counters={},
        ),
    ]


def run_audit_once(scenario: Scenario) -> "_AuditSample":
    """One audited batch on a cold verdict cache, then warm.

    Both passes run the same jobs with ``audit=True`` against one
    fresh artifact store: the first pays the full adversarial loop
    (suite generation + concrete replay per subspec), the second must
    serve every verdict from the content-addressed ``audit`` stage.
    A verdict that differs between the passes -- or a warm pass that
    re-ran a suite -- fails the bench rather than timing a lie.
    """
    import shutil
    import tempfile

    from .farm.job import enumerate_jobs
    from .farm.keys import FarmOptions
    from .farm.pool import run_batch
    from .farm.worker import reset_shared_slot

    config, spec = scenario.paper_config, scenario.specification
    jobs = enumerate_jobs(config, spec)
    options = FarmOptions(audit=True)
    tmp = tempfile.mkdtemp(prefix="repro-bench-audit-")
    try:
        reset_shared_slot()
        cold = run_batch(config, spec, jobs, options=options, cache_dir=tmp)
        reset_shared_slot()
        warm = run_batch(config, spec, jobs, options=options, cache_dir=tmp)
        reset_shared_slot()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if [r.audit for r in cold.results] != [r.audit for r in warm.results]:
        raise RuntimeError("warm audit cache changed a verdict")
    if warm.metrics.counters.get("audit.suites", 0):
        raise RuntimeError("warm audit pass re-ran a suite instead of "
                           "hitting the verdict cache")
    counters = {
        name: value
        for name, value in cold.metrics.counters.items()
        if name.startswith("audit.")
    }
    for name, value in warm.metrics.counters.items():
        if name.startswith("audit."):
            counters[name] = counters.get(name, 0) + value
    return _AuditSample(cold.wall_s, warm.wall_s, counters)


class _AuditSample:
    """Wall times and audit counters of one cold/warm iteration."""

    def __init__(self, cold_s: float, warm_s: float, counters: Dict[str, int]):
        self.cold_s = cold_s
        self.warm_s = warm_s
        self.counters = counters


def _audit_records(
    scenario_name: str,
    samples: Sequence[_AuditSample],
) -> List[StageRecord]:
    """Two records per scenario: the cold audit and the warm replay.

    ``audit`` (the gated stage) is the wall time of the audited batch
    on an empty verdict cache; ``audit.warm`` replays it against the
    populated store, so the cache's payoff is the ratio of the two
    medians.  Counters are totalled over all runs.
    """
    cold = [sample.cold_s for sample in samples]
    warm = [sample.warm_s for sample in samples]
    counters: Dict[str, int] = {}
    for sample in samples:
        for name, value in sample.counters.items():
            counters[name] = counters.get(name, 0) + value
    return [
        StageRecord(
            scenario=scenario_name,
            stage="audit",
            runs=len(samples),
            median_s=percentile(cold, 0.50),
            p95_s=percentile(cold, 0.95),
            total_s=sum(cold),
            counters=counters,
        ),
        StageRecord(
            scenario=scenario_name,
            stage="audit.warm",
            runs=len(samples),
            median_s=percentile(warm, 0.50),
            p95_s=percentile(warm, 0.95),
            total_s=sum(warm),
            counters={},
        ),
    ]


class _ServeSample:
    """One iteration of the multi-tenant serving workload.

    Wall times for the three paths (seed FIFO + per-batch pools, cold
    fleet, warm fleet), plus per-job queue-wait and end-to-end latency
    samples from the warm-fleet pass and the interesting counters.
    """

    def __init__(
        self,
        fifo_s: float,
        cold_s: float,
        warm_s: float,
        waits: List[float],
        e2e: List[float],
        results: int,
        counters: Dict[str, int],
    ):
        self.fifo_s = fifo_s
        self.cold_s = cold_s
        self.warm_s = warm_s
        self.waits = waits
        self.e2e = e2e
        self.results = results
        self.counters = counters


def _verify_served(jobs, reference: str) -> int:
    """Every job finished ``DONE`` with the reference document bytes.

    The serving layer's contract is that a served batch is
    byte-identical (timings normalized) to ``explain-all --json`` on
    the same cache; a divergence fails the bench rather than timing a
    wrong answer.  Returns the total per-line results served.
    """
    from . import api
    from .farm.report import dump_document, normalize_document

    total = 0
    for job in jobs:
        if job.state != api.STATE_DONE or job.report is None:
            raise RuntimeError(
                f"serve bench job {job.id} ended {job.state}: {job.error}"
            )
        document = dump_document(normalize_document(dict(job.report.document)))
        if document != reference:
            raise RuntimeError(
                f"served document for {job.id} diverged from explain-all --json"
            )
        total += len(job.report.results)
    return total


def run_serve_once(
    scenario_name: str, cache_dir: str, reference: str
) -> _ServeSample:
    """One pass of the K-tenant concurrent workload, three ways.

    The workload is :data:`SERVE_TENANTS` tenants each submitting
    :data:`SERVE_BATCHES_PER_TENANT` batches of ``scenario_name`` at
    once.  It runs first on the seed path (one FIFO runner, a process
    pool forked per batch), then twice on a freshly spawned
    :class:`~repro.farm.fleet.WorkerFleet` behind a fair-share queue --
    the first fleet pass is cold (workers just forked), the second is
    warm (resident stores and caches).  Every served document must be
    byte-identical to ``reference``.
    """
    import gc

    from . import api
    from .farm.fleet import WorkerFleet
    from .serve.queue import JobQueue, RetentionPolicy
    from .serve.tenants import TenantBook

    request = api.ExplainRequest(
        scenario=scenario_name, workers=SERVE_BATCH_WORKERS
    )
    # Evict terminal jobs immediately: retained result documents are
    # megabytes of live parent heap, and carrying one pass's reports
    # into the next skews it (slower forks, more GC).  Each pass is
    # verified from local references, then released.
    retention = RetentionPolicy(max_completed=0)

    def workload(queue: JobQueue):
        start = time.perf_counter()
        jobs = []
        for _ in range(SERVE_BATCHES_PER_TENANT):
            for index in range(SERVE_TENANTS):
                jobs.append(queue.submit(request, tenant=f"tenant-{index}"))
        for job in jobs:
            # Blocks until the job is terminal (the event stream's end).
            queue.events_since(job.id, 1 << 30, timeout=None)
        return time.perf_counter() - start, jobs

    # The seed path: global FIFO, per-batch process pools.
    fifo = JobQueue(cache_dir=cache_dir, concurrency=1, retention=retention)
    try:
        fifo_s, fifo_jobs = workload(fifo)
    finally:
        fifo.drain(timeout=60.0)
    _verify_served(fifo_jobs, reference)
    del fifo, fifo_jobs
    gc.collect()

    # The fleet path: shared warm workers, fair-share concurrent batches.
    metrics = MetricsRegistry()
    fleet = WorkerFleet(SERVE_FLEET_WORKERS, metrics=metrics)
    queue = JobQueue(
        cache_dir=cache_dir,
        metrics=metrics,
        tenants=TenantBook(),
        concurrency=SERVE_TENANTS,
        fleet=fleet,
        retention=retention,
    )
    try:
        cold_s, cold_jobs = workload(queue)
        _verify_served(cold_jobs, reference)
        del cold_jobs
        gc.collect()
        warm_s, warm_jobs = workload(queue)
        residency = dict(fleet.stats().residency)
    finally:
        queue.drain(timeout=60.0)
        fleet.close()
    results = _verify_served(warm_jobs, reference)

    waits = [
        max(0.0, (job.started_at or 0.0) - job.submitted_at)
        for job in warm_jobs
    ]
    e2e = [
        max(0.0, (job.finished_at or 0.0) - job.submitted_at)
        for job in warm_jobs
    ]
    counters = {
        name: value
        for name, value in metrics.counters.items()
        if name.startswith(("serve.", "farm.fleet."))
    }
    for name, value in residency.items():
        key = f"farm.fleet.{name}"
        counters[key] = counters.get(key, 0) + value
    return _ServeSample(fifo_s, cold_s, warm_s, waits, e2e, results, counters)


def _serve_records(
    scenario_name: str,
    samples: Sequence[_ServeSample],
) -> List[StageRecord]:
    """Five records per scenario for the serving workload.

    ``serve`` (the gated stage) is the warm-fleet wall time of the
    whole workload; ``serve.cold`` is the same workload on a
    just-forked fleet, ``serve.fifo`` the seed FIFO + per-batch-pool
    control (speedup = ``serve.fifo`` / ``serve``).  ``serve.wait``
    and ``serve.e2e`` aggregate per-job queue-wait and end-to-end
    latency samples from the warm pass (their p95s are the tail the
    issue asks for).  Throughput in jobs/sec is
    ``serve.results / total_s`` of the ``serve`` record.
    """
    warm = [sample.warm_s for sample in samples]
    cold = [sample.cold_s for sample in samples]
    fifo = [sample.fifo_s for sample in samples]
    waits = [value for sample in samples for value in sample.waits]
    e2e = [value for sample in samples for value in sample.e2e]
    counters: Dict[str, int] = {"serve.results": 0}
    for sample in samples:
        counters["serve.results"] += sample.results
        for name, value in sample.counters.items():
            counters[name] = counters.get(name, 0) + value
    return [
        StageRecord(
            scenario=scenario_name,
            stage="serve",
            runs=len(samples),
            median_s=percentile(warm, 0.50),
            p95_s=percentile(warm, 0.95),
            total_s=sum(warm),
            counters=counters,
        ),
        StageRecord(
            scenario=scenario_name,
            stage="serve.cold",
            runs=len(samples),
            median_s=percentile(cold, 0.50),
            p95_s=percentile(cold, 0.95),
            total_s=sum(cold),
            counters={},
        ),
        StageRecord(
            scenario=scenario_name,
            stage="serve.fifo",
            runs=len(samples),
            median_s=percentile(fifo, 0.50),
            p95_s=percentile(fifo, 0.95),
            total_s=sum(fifo),
            counters={},
        ),
        StageRecord(
            scenario=scenario_name,
            stage="serve.wait",
            runs=len(waits),
            median_s=percentile(waits, 0.50),
            p95_s=percentile(waits, 0.95),
            total_s=sum(waits),
            counters={},
        ),
        StageRecord(
            scenario=scenario_name,
            stage="serve.e2e",
            runs=len(e2e),
            median_s=percentile(e2e, 0.50),
            p95_s=percentile(e2e, 0.95),
            total_s=sum(e2e),
            counters={},
        ),
    ]


def _serve_bench(scenario_name: str, runs: int) -> List[StageRecord]:
    """The serve family for one scenario: warm a cache, run, record.

    Each scenario gets a throwaway artifact store, warm-filled once by
    a direct :func:`repro.api.explain_batch` pass; a second direct
    pass yields the warm reference document every served batch must
    reproduce byte-for-byte (the served batches hit the warm store, so
    the reference must be the cached-status document, not the cold
    one).
    """
    import tempfile

    from . import api
    from .farm.report import dump_document, normalize_document

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as cache_dir:
        request = api.ExplainRequest(
            scenario=scenario_name,
            workers=SERVE_BATCH_WORKERS,
            cache_dir=cache_dir,
        )
        api.explain_batch(request)
        warm = api.explain_batch(request)
        reference = dump_document(normalize_document(dict(warm.document)))
        samples = [
            run_serve_once(scenario_name, cache_dir, reference)
            for _ in range(runs)
        ]
    return _serve_records(scenario_name, samples)


def _stage_records(scenario_name: str, merged: MetricsRegistry) -> List[StageRecord]:
    """Per-stage records from the merged per-iteration registries.

    One record per ``span:<stage>`` histogram; its counters are the
    stage-attributed counters with the ``<stage>:`` prefix stripped,
    totalled over *all* runs (the pipeline is deterministic, so
    per-run work is the total divided by ``runs``).
    """
    records: List[StageRecord] = []
    for name in merged.histogram_names:
        if not name.startswith(SPAN_PREFIX):
            continue
        stage = name[len(SPAN_PREFIX):]
        samples = merged.samples(name)
        counters = {
            counter[len(stage) + 1:]: value
            for counter, value in merged.counters.items()
            if counter.startswith(stage + ":")
        }
        records.append(
            StageRecord(
                scenario=scenario_name,
                stage=stage,
                runs=len(samples),
                median_s=percentile(samples, 0.50),
                p95_s=percentile(samples, 0.95),
                total_s=sum(samples),
                counters=counters,
            )
        )
    records.sort(key=lambda record: record.stage)
    return records


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    repeat: Optional[int] = None,
    quick: bool = False,
    families: Optional[Sequence[str]] = None,
) -> BenchReport:
    """Run the suite and return the aggregated report.

    ``scenarios`` defaults to the full suite; ``repeat`` defaults to
    2 iterations in ``--quick`` mode and 5 otherwise; ``families``
    defaults to every family in :data:`BENCH_FAMILIES`.
    """
    names = list(scenarios) if scenarios else list(SCENARIO_BUILDERS)
    for name in names:
        if name not in SCENARIO_BUILDERS:
            known = ", ".join(sorted(SCENARIO_BUILDERS))
            raise ValueError(f"unknown bench scenario {name!r}; known: {known}")
    chosen = list(families) if families else list(BENCH_FAMILIES)
    for family in chosen:
        if family not in BENCH_FAMILIES:
            known = ", ".join(BENCH_FAMILIES)
            raise ValueError(f"unknown bench family {family!r}; known: {known}")
    runs = repeat if repeat is not None else (QUICK_REPEAT if quick else FULL_REPEAT)
    if runs < 1:
        raise ValueError(f"repeat must be positive, got {runs}")

    stages: List[StageRecord] = []
    for name in names:
        scenario = SCENARIO_BUILDERS[name]()
        if "pipeline" in chosen:
            merged = MetricsRegistry()
            for _ in range(runs):
                obs = Instrumentation()
                run_scenario_once(scenario, obs)
                merged.merge(obs.metrics)
            stages.extend(_stage_records(name, merged))
        if "perline" in chosen:
            samples = [run_perline_once(scenario) for _ in range(runs)]
            stages.extend(_perline_records(name, samples))
        if "serve" in chosen:
            stages.extend(_serve_bench(name, runs))
        if "audit" in chosen:
            audit_samples = [run_audit_once(scenario) for _ in range(runs)]
            stages.extend(_audit_records(name, audit_samples))

    return BenchReport(
        stages=stages,
        source="repro.cli bench",
        quick=quick,
        repeat=runs,
        calibration_s=measure_calibration(),
    )


#: Counters surfaced in the rendered table (full set stays in the JSON).
_HEADLINE_COUNTERS = (
    "sat.conflicts",
    "sat.propagations",
    "rewrite.steps",
    "encode.candidates",
    "project.assignments",
    "lift.candidates_evaluated",
    "simulate.rounds",
    "farm.families",
    "smt.session.instances",
    "smt.session.reuse",
    "serve.results",
    "serve.sched.dispatch",
    "farm.fleet.shared_warm_hits",
    "farm.fleet.store_resident_hits",
    "audit.suites",
    "audit.cases",
    "audit.cache.hits",
)


def format_report(report: BenchReport) -> str:
    """Render ``report`` as the table the CLI prints."""
    lines = [
        f"bench: {report.repeat} run(s) per scenario"
        + (" [quick]" if report.quick else "")
        + (
            f", calibration {report.calibration_s * 1000:.1f}ms"
            if report.calibration_s is not None
            else ""
        )
    ]
    header = f"{'scenario':<12} {'stage':<10} {'runs':>4} {'median':>9} {'p95':>9} {'total':>9}  work"
    lines.append(header)
    lines.append("-" * len(header))
    for record in report.stages:
        work = ", ".join(
            f"{counter.split('.', 1)[1]}={record.counters[counter]}"
            for counter in _HEADLINE_COUNTERS
            if counter in record.counters
        )
        lines.append(
            f"{record.scenario:<12} {record.stage:<10} {record.runs:>4} "
            f"{record.median_s * 1000:>7.1f}ms {record.p95_s * 1000:>7.1f}ms "
            f"{record.total_s * 1000:>7.1f}ms  {work}"
        )
    return "\n".join(lines)
