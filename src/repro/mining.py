"""Global intent mining (the Config2Spec / Anime baseline).

The paper's related work contrasts localized subspecifications with
*specification mining*: "Config2Spec and Anime mine global intents from
network configurations. Unlike these work, we focus on generating
localized subspecification" (§6).  This module provides that baseline:
given a concrete configuration, it mines the global path statements the
network currently satisfies, so the comparison benchmark can quantify
the paper's "taming complexity" argument -- a mined global
specification describes *everything*, while a localized subspec answers
one question.

Mined statements:

* **Reachability** -- for every edge (non-managed) router and every
  originated prefix it can reach, the exact selected traffic path.
* **Forbidden paths** -- for every ordered pair of distinct edge
  routers ``(a, b)``, the statement ``!(a -> ... -> b)`` when no
  selected path carries a managed-scoped matching slice.

By construction the mined specification verifies against the input
configuration (tested), making it a valid -- if unlocalized --
description of the network's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .bgp.config import NetworkConfig
from .bgp.simulation import simulate
from .spec.ast import (
    ForbiddenPath,
    Reachability,
    RequirementBlock,
    Specification,
    Statement,
)
from .spec.semantics import violates_forbidden
from .topology.paths import PathPattern, WILDCARD

__all__ = ["MiningResult", "mine_specification"]


@dataclass
class MiningResult:
    """A mined global specification plus its size accounting."""

    specification: Specification
    reachability_count: int
    forbidden_count: int

    @property
    def total_statements(self) -> int:
        return self.reachability_count + self.forbidden_count

    def summary(self) -> str:
        return (
            f"mined {self.total_statements} global statements "
            f"({self.reachability_count} reachability, "
            f"{self.forbidden_count} forbidden)"
        )


def mine_specification(
    config: NetworkConfig,
    managed: Tuple[str, ...] = (),
    include_reachability: bool = True,
    include_forbidden: bool = True,
) -> MiningResult:
    """Mine the global statements the configuration satisfies."""
    topology = config.topology
    outcome = simulate(config)
    managed_set = frozenset(managed)
    edge_routers = [
        router.name for router in topology.routers if router.name not in managed_set
    ]

    reach_statements: List[Statement] = []
    if include_reachability:
        for router in edge_routers:
            for target in topology.routers:
                if target.name == router or not target.originated:
                    continue
                for prefix in target.originated:
                    path = outcome.forwarding_path(router, prefix)
                    if path is None:
                        continue
                    reach_statements.append(Reachability(PathPattern(path.hops)))
        # Identical selected paths for several prefixes of one origin
        # mine the same statement; deduplicate.
        reach_statements = list(dict.fromkeys(reach_statements))

    forbidden_statements: List[Statement] = []
    if include_forbidden:
        selected = [path for _, _, path in outcome.selected_paths()]
        for source in edge_routers:
            for target in edge_routers:
                if source == target:
                    continue
                pattern = PathPattern.of(source, WILDCARD, target)
                if any(
                    violates_forbidden(path, pattern, managed_set)
                    for path in selected
                ):
                    continue
                forbidden_statements.append(ForbiddenPath(pattern))

    blocks = []
    if reach_statements:
        blocks.append(RequirementBlock("MinedReachability", tuple(reach_statements)))
    if forbidden_statements:
        blocks.append(RequirementBlock("MinedForbidden", tuple(forbidden_statements)))
    specification = Specification(tuple(blocks), managed_set)
    return MiningResult(
        specification=specification,
        reachability_count=len(reach_statements),
        forbidden_count=len(forbidden_statements),
    )
