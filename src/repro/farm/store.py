"""The persistent content-addressed artifact store.

Layout (ccache-style fan-out to keep directories small)::

    <cache_dir>/<key[:2]>/<key>.<stage>.json

Each file is a schema-versioned envelope wrapping one JSON artifact
payload plus an integrity hash; anything that fails to parse, carries
the wrong schema, or does not hash to its recorded integrity value is
treated as a miss (and counted), never as an error -- a corrupted cache
must degrade to a cold run, not break the batch.

Stages are free-form strings; the farm uses ``seed``, ``simplify``,
``projected`` and ``lift`` (the engine's mid-pipeline artifacts,
written through the :class:`JobStore` adapter) plus ``explanation`` and
``readset`` (the full answer and its recorded dependency slice).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .keys import canonical_json, digest

__all__ = [
    "STORE_SCHEMA",
    "QUARANTINE_SCHEMA",
    "ArtifactStore",
    "JobStore",
    "StoreError",
]

STORE_SCHEMA = "repro-farm-store/1"
QUARANTINE_SCHEMA = "repro-farm-quarantine/1"

_STAGE_SAFE = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_-")


class StoreError(ValueError):
    """Raised on misuse of the store API (never on bad cache bytes)."""


class ArtifactStore:
    """On-disk artifact store keyed by (job key, stage).

    All operations are best-effort with respect to the filesystem:
    unreadable or corrupt entries read as misses, and writes are atomic
    (temp file + ``os.replace``) so concurrent workers sharing one
    cache directory can never observe a half-written artifact.

    One instance may be shared by many threads of a long-running
    process (the serving layer hands one store to every request): the
    mutable bits -- the stats counters and the quarantine-ledger
    read-modify-write -- are guarded by an instance lock, and reads
    never hold it (concurrent readers only ever see a complete old or
    complete new artifact, courtesy of ``os.replace``).  The ledger
    lock is per-process only; concurrent *processes* appending to one
    ledger can at worst drop each other's newest entry, never corrupt
    it.
    """

    def __init__(self, cache_dir: str, hot_artifacts: int = 0) -> None:
        self.cache_dir = cache_dir
        #: ``hit.<stage>`` / ``miss.<stage>`` / ``store.<stage>`` /
        #: ``corrupt.<stage>`` counters for the batch report.
        self.stats: Dict[str, int] = {}
        #: Capacity of the in-memory hot-artifact cache (0 disables).
        #: Long-lived handles (a fleet worker's resident store) keep
        #: the canonical JSON of the most recently touched payloads so
        #: repeat loads skip the filesystem entirely.  Hits are counted
        #: exactly like disk hits, and each load deserializes a fresh
        #: dict, so callers (and batch report documents) cannot tell
        #: the difference.  A payload replaced on disk by *another*
        #: process keeps serving the remembered copy until evicted --
        #: acceptable because artifacts are content-addressed by job
        #: key and deterministic.
        self.hot_artifacts = hot_artifacts
        self._hot: "OrderedDict[Tuple[str, str], str]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def _count(self, event: str, stage: str) -> None:
        name = f"{event}.{stage}"
        with self._lock:
            self.stats[name] = self.stats.get(name, 0) + 1

    def _remember(self, key: str, stage: str, text: str) -> None:
        with self._lock:
            self._hot[(key, stage)] = text
            self._hot.move_to_end((key, stage))
            while len(self._hot) > self.hot_artifacts:
                self._hot.popitem(last=False)

    def _recall(self, key: str, stage: str) -> Optional[str]:
        if not self.hot_artifacts:
            return None
        with self._lock:
            text = self._hot.get((key, stage))
            if text is not None:
                self._hot.move_to_end((key, stage))
            return text

    def path_for(self, key: str, stage: str) -> str:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise StoreError(f"malformed job key {key!r}")
        if not stage or any(c not in _STAGE_SAFE for c in stage):
            raise StoreError(f"malformed stage name {stage!r}")
        return os.path.join(self.cache_dir, key[:2], f"{key}.{stage}.json")

    # ------------------------------------------------------------------

    def load(self, key: str, stage: str) -> Optional[dict]:
        """The stored payload for (key, stage), or ``None`` on a miss."""
        path = self.path_for(key, stage)
        hot = self._recall(key, stage)
        if hot is not None:
            self._count("hit", stage)
            return json.loads(hot)
        try:
            with open(path, "r", encoding="ascii") as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            if os.path.exists(path):
                self._count("corrupt", stage)
            self._count("miss", stage)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != STORE_SCHEMA
            or envelope.get("key") != key
            or envelope.get("stage") != stage
            or not isinstance(envelope.get("payload"), dict)
            or envelope.get("integrity") != digest(envelope["payload"])
        ):
            self._count("corrupt", stage)
            self._count("miss", stage)
            return None
        self._count("hit", stage)
        if self.hot_artifacts:
            self._remember(key, stage, canonical_json(envelope["payload"]))
        return envelope["payload"]

    def _write_atomic(self, path: str, text: str) -> bool:
        """Write ``text`` to ``path`` atomically (temp + ``os.replace``).

        Returns whether the write landed; a read-only or full cache
        degrades to "no cache" and never leaves a half-written file
        visible under ``path``.
        """
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                try:
                    handle = os.fdopen(fd, "w", encoding="ascii")
                except BaseException:
                    # fdopen failing would otherwise leak the raw fd: a
                    # long-running server bleeding one descriptor per
                    # failed write eventually hits EMFILE.
                    os.close(fd)
                    raise
                with handle:
                    handle.write(text)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def save(self, key: str, stage: str, payload: dict) -> None:
        """Atomically persist ``payload`` under (key, stage)."""
        if not isinstance(payload, dict):
            raise StoreError(
                f"artifact payloads must be dicts, got {type(payload).__name__}"
            )
        path = self.path_for(key, stage)
        envelope = {
            "schema": STORE_SCHEMA,
            "key": key,
            "stage": stage,
            "integrity": digest(payload),
            "payload": payload,
        }
        if self._write_atomic(path, canonical_json(envelope)):
            self._count("store", stage)
            if self.hot_artifacts:
                self._remember(key, stage, canonical_json(payload))

    # -- quarantine ledger ---------------------------------------------

    @property
    def quarantine_path(self) -> str:
        return os.path.join(self.cache_dir, "quarantine.json")

    def quarantine_entries(self) -> List[dict]:
        """The quarantine ledger's entries (empty on absence/corruption).

        Like artifact reads, a corrupt ledger degrades to "no ledger"
        rather than failing a batch whose answers are otherwise fine.
        """
        try:
            with open(self.quarantine_path, "r", encoding="ascii") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return []
        if (
            not isinstance(document, dict)
            or document.get("schema") != QUARANTINE_SCHEMA
            or not isinstance(document.get("entries"), list)
        ):
            return []
        return [e for e in document["entries"] if isinstance(e, dict)]

    def quarantine_add(self, entry: dict) -> None:
        """Append one quarantined-job record to the ledger, atomically.

        The read-modify-write runs under the instance lock, so every
        supervisor thread of one process (the serving layer runs many
        batches over one store) appends without losing entries;
        concurrent *processes* over one cache can at worst drop each
        other's newest entry, never corrupt the ledger.
        """
        with self._lock:
            entries = self.quarantine_entries()
            entries.append(entry)
            document = {"schema": QUARANTINE_SCHEMA, "entries": entries}
            landed = self._write_atomic(
                self.quarantine_path, canonical_json(document)
            )
        if landed:
            self._count("quarantine", "ledger")


class JobStore:
    """Adapter scoping an :class:`ArtifactStore` to one job key.

    This is the object handed to the engine as its ``stage_store``:
    the engine speaks ``load(stage)`` / ``save(stage, payload)`` with
    no notion of keys, and the farm guarantees one adapter (and one
    engine) per job so stage artifacts can never leak across questions.
    """

    def __init__(self, store: ArtifactStore, key: str) -> None:
        self.store = store
        self.key = key

    def load(self, stage: str) -> Optional[dict]:
        return self.store.load(self.key, stage)

    def save(self, stage: str, payload: dict) -> None:
        self.store.save(self.key, stage, payload)
