"""The worker pool: fan jobs out, fold metrics back in.

``-j N`` with ``N > 1`` runs jobs on a :class:`ProcessPoolExecutor`
(each worker re-opens the shared artifact store; writes are atomic, so
concurrent workers are safe); ``-j 1`` is a plain serial loop with no
multiprocessing machinery at all -- the fallback for environments where
fork/spawn is unavailable or undesirable.

One aggregate ``--budget`` is split into deterministic per-job shares
that sum to the batch budget (:func:`repro.runtime.split_budget`);
``--timeout`` applies to each job individually (a batch-wide
wall-clock deadline would make a job's outcome depend on its position
in the schedule, destroying cache determinism).

Results are collected with :func:`~concurrent.futures.as_completed`
and every per-future exception -- a worker killed by the OS, a broken
pool, an unpicklable result -- is converted into a ``FAILED``
:class:`JobResult` for that job alone: even the minimal non-supervised
path survives one bad job.  For retries, hang watchdogs, quarantine
and crash-safe resume, see :mod:`repro.farm.supervise`.

Every worker ships its :class:`MetricsRegistry` home inside the
:class:`JobResult`; the batch merges them (counters add, histograms
concatenate) into one registry, from which the BENCH-compatible
per-stage report is derived exactly as the benchmark harness does.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import (
    BenchReport,
    Instrumentation,
    MetricsRegistry,
    SPAN_PREFIX,
    StageRecord,
    percentile,
)
from ..runtime import TRANSIENT, split_budget
from ..spec.ast import Specification
from ..bgp.config import NetworkConfig
from . import report as report_mod
from .invalidate import compute_dirty
from .job import ExplainJob, JobFamily, group_families
from .keys import FarmOptions
from .store import ArtifactStore
from .worker import (
    JobResult,
    STATUS_CACHED,
    STATUS_ERROR,
    run_audit,
    run_family,
    run_job,
    shared_batch_key,
)

__all__ = ["BatchReport", "run_batch", "run_incremental"]


@dataclass
class BatchReport:
    """Everything one ``explain-all`` invocation produced."""

    scenario: str
    results: List[JobResult]
    workers: int
    wall_s: float
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    # -- aggregate views -----------------------------------------------

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def degraded(self) -> int:
        return sum(1 for r in self.results if r.degraded)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if r.status == STATUS_ERROR)

    @property
    def quarantined(self) -> int:
        return sum(1 for r in self.results if r.quarantined)

    @property
    def retried(self) -> int:
        """Jobs that needed more than one attempt (supervised runs)."""
        return sum(1 for r in self.results if r.attempts > 1)

    @property
    def cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def audited(self) -> int:
        """Jobs whose answer went through the adversarial audit."""
        return sum(1 for r in self.results if r.audit is not None)

    @property
    def audit_refuted(self) -> int:
        """Audited jobs whose final verdict refutes the subspec (a
        repaired re-lift does not count: the record keeps the refuting
        label, but the served answer was proven good)."""
        return sum(
            1
            for r in self.results
            if r.audit is not None
            and r.audit.get("verdict") in ("too-weak", "too-strong")
            and not r.audit.get("repaired")
        )

    @property
    def audit_repaired(self) -> int:
        return sum(
            1
            for r in self.results
            if r.audit is not None and r.audit.get("repaired")
        )

    @property
    def cpu_s(self) -> float:
        """Summed per-job runtime (compare against ``wall_s`` for the
        parallel speedup actually realized)."""
        return sum(r.duration_s for r in self.results)

    def stage_cache_rate(self) -> Optional[float]:
        """Fraction of per-stage store probes that hit, or ``None``
        when the batch ran without a store."""
        hits = sum(
            value
            for name, value in self.metrics.counters.items()
            if name.startswith("farm.store.hit.")
        )
        misses = sum(
            value
            for name, value in self.metrics.counters.items()
            if name.startswith("farm.store.miss.")
        )
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    # -- rendering ------------------------------------------------------
    #
    # The table and document shapes live in repro.farm.report (the
    # single source of truth the CLI, the serving layer and the typed
    # facade share); these methods are thin delegates kept for callers
    # holding a report object.

    def summary_table(self) -> str:
        """The human-readable per-job table plus batch totals."""
        return report_mod.summary_table(self)

    def stage_records(self) -> List[StageRecord]:
        """Per-stage records in the benchmark harness's shape."""
        records: List[StageRecord] = []
        for name in self.metrics.histogram_names:
            if not name.startswith(SPAN_PREFIX):
                continue
            stage = name[len(SPAN_PREFIX):]
            samples = self.metrics.samples(name)
            counters = {
                counter[len(stage) + 1:]: value
                for counter, value in self.metrics.counters.items()
                if counter.startswith(stage + ":")
            }
            records.append(
                StageRecord(
                    scenario=self.scenario,
                    stage=stage,
                    runs=len(samples),
                    median_s=percentile(samples, 0.50),
                    p95_s=percentile(samples, 0.95),
                    total_s=sum(samples),
                    counters=counters,
                )
            )
        records.sort(key=lambda record: record.stage)
        return records

    def to_bench_report(self) -> BenchReport:
        return BenchReport(
            stages=self.stage_records(), source="repro.farm", repeat=1
        )

    def to_dict(self) -> Dict[str, object]:
        """The ``--json`` report document."""
        return report_mod.report_document(self)


def _member_indices(
    jobs: List[ExplainJob], families: List[JobFamily]
) -> Dict[int, List[int]]:
    """family.index -> each member's position in the original batch."""
    positions: Dict[ExplainJob, List[int]] = {}
    for index, job in enumerate(jobs):
        positions.setdefault(job, []).append(index)
    return {
        family.index: [positions[job].pop(0) for job in family.jobs]
        for family in families
    }


def _merge_metrics(report: BatchReport) -> None:
    for result in report.results:
        report.metrics.merge(result.metrics)


def run_batch(
    config: NetworkConfig,
    specification: Specification,
    jobs: List[ExplainJob],
    options: Optional[FarmOptions] = None,
    cache_dir: Optional[str] = None,
    workers: int = 1,
    timeout: Optional[float] = None,
    budget: Optional[int] = None,
    scenario: str = "batch",
    share: bool = True,
) -> BatchReport:
    """Answer every job, serially or on a process pool.

    With ``share`` (the default), jobs are grouped into
    :class:`JobFamily` units -- the per-line questions of one (device,
    requirement block) -- and each family is dispatched to one worker,
    which answers its members against a process-local
    :class:`~repro.explain.family.SharedCaches`.  Sharing silently
    disables itself under ``--timeout``/``--budget`` (governed answers
    must not depend on sibling work); ``share=False`` restores per-job
    dispatch with no shared state at all.  Either way, per-job cache
    keys, stored artifacts and read-sets are byte-identical.

    This is the minimal, non-supervised path: no retries, no watchdog
    -- but a dead worker or unpicklable result fails only its own job
    (its own family, under family dispatch), never the batch.  Use
    :func:`repro.farm.supervise.run_supervised` for fault tolerance.
    """
    if options is None:
        options = FarmOptions()
    started = time.perf_counter()
    shares = split_budget(budget, len(jobs)) if jobs else None
    results: List[JobResult] = []
    if not share:
        if workers <= 1 or len(jobs) <= 1:
            for index, job in enumerate(jobs):
                results.append(
                    run_job(
                        config, specification, job, options,
                        cache_dir, timeout,
                        shares[index] if shares is not None else None,
                    )
                )
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                job_of = {
                    pool.submit(
                        run_job, config, specification, job, options,
                        cache_dir, timeout,
                        shares[index] if shares is not None else None,
                    ): (index, job)
                    for index, job in enumerate(jobs)
                }
                collected: Dict[int, JobResult] = {}
                for future in as_completed(job_of):
                    index, job = job_of[future]
                    try:
                        collected[index] = future.result()
                    except Exception as exc:
                        # The worker died (or its result cannot cross
                        # the process boundary): fail this job, keep
                        # siblings.
                        collected[index] = JobResult(
                            job=job, key=None, status=STATUS_ERROR,
                            cached=False, duration_s=0.0,
                            error=f"{type(exc).__name__}: {exc}",
                            error_kind=TRANSIENT,
                        )
                results = [collected[index] for index in range(len(jobs))]
    else:
        families = group_families(jobs)
        members = _member_indices(jobs, families)
        shared_key = (
            shared_batch_key(config, specification, options)
            if timeout is None and budget is None
            else None
        )

        def family_args(family: JobFamily):
            indices = members[family.index]
            budgets = (
                [shares[i] for i in indices] if shares is not None else None
            )
            return (
                config, specification, family.jobs, options, cache_dir,
                timeout, budgets, None, None, shared_key,
            )

        by_index: Dict[int, JobResult] = {}
        if workers <= 1 or len(families) <= 1:
            for family in families:
                for i, result in zip(
                    members[family.index], run_family(*family_args(family))
                ):
                    by_index[i] = result
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                family_of = {
                    pool.submit(run_family, *family_args(family)): family
                    for family in families
                }
                for future in as_completed(family_of):
                    family = family_of[future]
                    indices = members[family.index]
                    try:
                        for i, result in zip(indices, future.result()):
                            by_index[i] = result
                    except Exception as exc:
                        # The worker died mid-family: fail every member
                        # (their shared state is suspect), keep other
                        # families.
                        for i in indices:
                            by_index[i] = JobResult(
                                job=jobs[i], key=None, status=STATUS_ERROR,
                                cached=False, duration_s=0.0,
                                error=f"{type(exc).__name__}: {exc}",
                                error_kind=TRANSIENT,
                            )
        results = [by_index[index] for index in range(len(jobs))]
    report = BatchReport(
        scenario=scenario,
        results=results,
        workers=max(1, workers),
        wall_s=time.perf_counter() - started,
    )
    _merge_metrics(report)
    return report


def run_incremental(
    old_config: NetworkConfig,
    new_config: NetworkConfig,
    specification: Specification,
    jobs: List[ExplainJob],
    options: Optional[FarmOptions] = None,
    cache_dir: Optional[str] = None,
    workers: int = 1,
    timeout: Optional[float] = None,
    budget: Optional[int] = None,
    scenario: str = "batch",
    share: bool = True,
) -> BatchReport:
    """Re-run only the jobs an edit actually dirtied.

    Jobs whose key is unchanged *and* whose stored read-set replays
    cleanly against ``new_config`` are served from the store without
    touching the pipeline; everything else goes through
    :func:`run_batch` as usual.  Requires a cache directory (without
    one there is nothing to be incremental against).
    """
    if cache_dir is None:
        raise ValueError("incremental runs need a cache directory")
    if options is None:
        options = FarmOptions()
    started = time.perf_counter()
    store = ArtifactStore(cache_dir)
    dirty, clean = compute_dirty(
        old_config, new_config, specification, jobs, options, store
    )
    batch = run_batch(
        new_config, specification, dirty, options, cache_dir,
        workers, timeout, budget, scenario, share=share,
    )
    # Serve the provably-clean jobs from the store, preserving the
    # original enumeration order in the final report.
    served: Dict[ExplainJob, JobResult] = {r.job: r for r in batch.results}
    from ..explain.engine import Explanation

    for job, key in clean.items():
        payload = store.load(key, "explanation")
        assert payload is not None  # compute_dirty checked it exists
        restored = Explanation.from_dict(payload)
        obs = Instrumentation()
        obs.metrics.count("farm.cache.full_hit")
        obs.metrics.count(f"farm.jobs.{STATUS_CACHED}")
        # Clean jobs still answer for their subspec: the audit stage is
        # store-cached by (key, subspec, seed), so warm replays are
        # free, but a first audited run probes even untouched answers.
        audit = (
            run_audit(
                new_config, specification, job, options, store, key,
                payload, obs,
            )
            if options.audit
            else None
        )
        served[job] = JobResult(
            job=job, key=key, status=STATUS_CACHED, cached=True,
            duration_s=0.0, subspec=restored.subspec.render(),
            explanation=payload, metrics=obs.metrics, audit=audit,
        )
    report = BatchReport(
        scenario=scenario,
        results=[served[job] for job in jobs if job in served],
        workers=max(1, workers),
        wall_s=time.perf_counter() - started,
    )
    report.metrics = MetricsRegistry()
    _merge_metrics(report)
    report.metrics.count("farm.incremental.dirty", len(dirty))
    report.metrics.count("farm.incremental.clean", len(clean))
    return report
