"""The per-job runner (one call = one explanation question).

:func:`run_job` is a module-level function taking only picklable
arguments and returning a picklable :class:`JobResult`, so the pool can
ship it to worker processes unchanged; running it inline is the serial
(``-j 1``) fallback.

Per-job flow::

    symbolize -> key -> full-hit probe (answer + valid read-set?)
        hit:  return the stored answer (no pipeline work)
        miss: run the governed engine with a JobStore (partial stage
              hits resume mid-pipeline) and a TransferRecorder, then
              persist the answer + read-set iff the run was EXACT

Failures are contained: any exception becomes an ``ERROR`` result with
the per-job metrics collected so far -- one failing device never kills
the batch.  Each error is classified transient or permanent
(:func:`repro.runtime.error_kind`) inside the worker, so the
supervisor on the other side of the process boundary knows whether a
retry can help without re-raising anything.  Degraded (governed) runs
return their status but are never cached; a later run with more budget
must not be served a truncated answer.

Chaos hooks: when a :class:`~repro.runtime.ChaosPlan` rides along, the
worker consults it when it picks the job up (kill / hang / flaky) and
again after persisting artifacts (corrupt) -- see
``tests/farm/test_chaos.py`` for the recovery paths this exercises.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bgp.config import NetworkConfig
from ..bgp.render import render_network
from ..explain.engine import Explanation, ExplanationEngine, ExplanationStatus
from ..explain.family import SharedCaches
from ..explain.serialize import subspec_from_dict
from ..obs import Instrumentation, MetricsRegistry
from ..runtime import (
    CHAOS_CORRUPT,
    CHAOS_FLAKY,
    CHAOS_HANG,
    CHAOS_KILL,
    ChaosPlan,
    Governor,
    TransientError,
    error_kind,
)
from ..spec.ast import Specification
from ..synthesis.symexec import AttributeUniverse
from ..spec.printer import format_specification
from .invalidate import readset_valid
from .job import ExplainJob
from .keys import FarmOptions, digest, job_key
from .readset import TransferRecorder
from .report import (
    DEGRADED_STATUSES,
    OK_STATUSES,
    STATUS_CACHED,
    STATUS_ERROR,
    STATUS_QUARANTINED,
    job_row,
)
from .store import ArtifactStore, JobStore

__all__ = [
    "JobResult",
    "audit_artifact_key",
    "reset_shared_slot",
    "run_audit",
    "run_family",
    "run_job",
    "shared_batch_key",
    "take_residency_stats",
    "STATUS_ERROR",
    "STATUS_CACHED",
    "STATUS_QUARANTINED",
]

#: Store stage name under which audit verdicts are persisted.
AUDIT_STAGE = "audit"

#: Bumped whenever the shared-cache identity payload changes.
SHARED_KEY_SCHEMA = "repro-farm-shared/1"

# STATUS_ERROR / STATUS_CACHED / STATUS_QUARANTINED are defined in
# repro.farm.report (the status-taxonomy source of truth) and
# re-exported here for the worker's historical callers.

#: 1-based count of jobs this worker process has picked up; chaos
#: events can target "the Nth job of a worker" through it.
_JOB_ORDINAL = 0


@dataclass
class JobResult:
    """The picklable outcome of one job."""

    job: ExplainJob
    key: Optional[str]
    status: str
    cached: bool
    duration_s: float
    subspec: str = ""
    error: Optional[str] = None
    #: ``"transient"`` / ``"permanent"`` for errored jobs (the
    #: supervisor's retry decision), ``None`` otherwise.
    error_kind: Optional[str] = None
    #: How many attempts this job consumed (set by the supervisor; the
    #: unsupervised path always reports 1).
    attempts: int = 1
    #: Whether the job exhausted its retries and was quarantined.
    quarantined: bool = False
    #: The schema-stamped explanation payload (timings stripped), for
    #: ``--json`` reports and byte-level result comparisons.  ``None``
    #: for errored jobs.
    explanation: Optional[dict] = None
    #: The adversarial audit verdict payload (``repro-audit/1``), or
    #: ``None`` when the audit stage did not run for this job.
    audit: Optional[dict] = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def ok(self) -> bool:
        return self.status in OK_STATUSES

    @property
    def degraded(self) -> bool:
        return self.status in DEGRADED_STATUSES

    def row(self) -> Dict[str, object]:
        """One summary-table / JSON-report row."""
        return job_row(self)


def _answer_payload(explanation: Explanation) -> dict:
    """The persistent form of an answer: timings are run-specific
    measurements, not part of the answer, so they are stripped to keep
    stored artifacts deterministic and byte-comparable."""
    payload = explanation.to_dict()
    payload["timings"] = {}
    return payload


def _sketch_universe_of(sketch: NetworkConfig) -> AttributeUniverse:
    configs = [
        sketch.router_config(name) for name in sketch.topology.router_names
    ]
    return AttributeUniverse.collect(configs, sketch.topology)


def _apply_pickup_chaos(
    chaos: Optional[ChaosPlan], job_id: str, ordinal: int, attempt: int
) -> None:
    """Kill / hang / flaky faults fire when the worker picks a job up."""
    if chaos is None:
        return
    if chaos.select(CHAOS_KILL, job_id, ordinal, attempt):
        os._exit(chaos.select(CHAOS_KILL, job_id, ordinal, attempt)[0].exit_code)
    for event in chaos.select(CHAOS_HANG, job_id, ordinal, attempt):
        time.sleep(event.seconds)
    for event in chaos.select(CHAOS_FLAKY, job_id, ordinal, attempt):
        raise TransientError(
            f"injected transient fault ({job_id} attempt {attempt})"
        )


def _apply_corrupt_chaos(
    chaos: Optional[ChaosPlan],
    store: Optional[ArtifactStore],
    job_id: str,
    key: str,
    ordinal: int,
    attempt: int,
) -> None:
    """Truncate stored artifacts the plan marks for corruption."""
    if chaos is None or store is None:
        return
    for event in chaos.select(CHAOS_CORRUPT, job_id, ordinal, attempt):
        path = store.path_for(key, event.stage)
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:
            pass


def audit_artifact_key(key: str, subspec_payload: dict, seed: int) -> str:
    """The content address of one audit verdict.

    Covers the job key, the *subspecification under audit* and the
    suite seed -- so a tampered or re-lifted subspec can never be
    served a stale verdict, and changing the seed re-audits.
    """
    from ..audit import AUDIT_SCHEMA

    return digest(
        {
            "schema": AUDIT_SCHEMA,
            "job": key,
            "subspec": subspec_payload,
            "seed": seed,
        }
    )


def run_audit(
    config: NetworkConfig,
    specification: Specification,
    job: ExplainJob,
    options: FarmOptions,
    store: Optional[ArtifactStore],
    key: str,
    answer: dict,
    obs: Instrumentation,
    sketch: Optional[NetworkConfig] = None,
    holes=None,
) -> dict:
    """Run (or serve from cache) the audit stage for one answered job.

    The verdict is content-addressed by (job key, subspec payload,
    suite seed) under the ``audit`` store stage, so warm batches replay
    it for free and a changed answer is always re-audited.  Audit
    failures degrade to an ``unresolved`` verdict carrying the error --
    the audit stage may refute an answer, never destroy one.
    """
    from ..audit import Adjudicator, AuditReport, VERDICT_UNRESOLVED

    subspec_payload = answer["subspec"]
    audit_key = audit_artifact_key(key, subspec_payload, options.audit_seed)
    if store is not None:
        stored = store.load(audit_key, AUDIT_STAGE)
        if stored is not None:
            try:
                AuditReport.from_dict(stored)
            except (KeyError, TypeError, ValueError):
                pass
            else:
                obs.metrics.count("audit.cache.hits")
                return stored
    try:
        with obs.span(AUDIT_STAGE):
            if sketch is None or holes is None:
                sketch, holes = job.symbolize(config)
            subspec = subspec_from_dict(subspec_payload)
            adjudicator = Adjudicator(
                sketch,
                specification,
                holes,
                job.device,
                requirement=job.requirement,
                seed=options.audit_seed,
                max_path_length=options.max_path_length,
                ibgp=options.ibgp,
                obs=obs,
            )

            def relift(forced_acceptances, forced_rejections):
                engine = ExplanationEngine(
                    config,
                    specification,
                    max_path_length=options.max_path_length,
                    projection_limit=options.projection_limit,
                    ibgp=options.ibgp,
                )
                return engine.relift(
                    job.device, sketch, holes, job.requirement,
                    forced_acceptances=forced_acceptances,
                    forced_rejections=forced_rejections,
                ).subspec

            payload = adjudicator.adjudicate(subspec, relift=relift).to_dict()
    except Exception as exc:
        obs.metrics.count("audit.errors")
        return AuditReport(
            verdict=VERDICT_UNRESOLVED,
            seed=options.audit_seed,
            cases=0,
            agreements=0,
            disagreements=0,
            unresolved=0,
            space=0,
            exhaustive=False,
            error=f"{type(exc).__name__}: {exc}",
        ).to_dict()
    if store is not None:
        store.save(audit_key, AUDIT_STAGE, payload)
    return payload


def run_job(
    config: NetworkConfig,
    specification: Specification,
    job: ExplainJob,
    options: Optional[FarmOptions] = None,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    budget: Optional[int] = None,
    attempt: int = 1,
    chaos: Optional[ChaosPlan] = None,
    shared: Optional[SharedCaches] = None,
) -> JobResult:
    """Answer one job, consulting and feeding the artifact store.

    ``shared`` threads a worker-process :class:`SharedCaches` through
    the engine (family dispatch passes it); it is dropped whenever a
    governor is in play -- sharing under a deadline or budget would let
    one job's spend change another's answer.
    """
    global _JOB_ORDINAL
    _JOB_ORDINAL += 1
    ordinal = _JOB_ORDINAL
    if options is None:
        options = FarmOptions()
    started = time.perf_counter()
    obs = Instrumentation()
    store = _store_for(cache_dir) if cache_dir is not None else None
    # Resident handles accumulate stats across jobs; report only this
    # job's delta so the counters match a fresh handle's.
    stats_before = dict(store.stats) if store is not None else {}

    def finish(result: JobResult) -> JobResult:
        result.duration_s = time.perf_counter() - started
        if store is not None:
            for name, value in sorted(store.stats.items()):
                delta = value - stats_before.get(name, 0)
                if delta > 0:
                    obs.metrics.count(f"farm.store.{name}", delta)
        obs.metrics.count(f"farm.jobs.{result.status}")
        result.metrics = obs.metrics
        return result

    try:
        _apply_pickup_chaos(chaos, job.job_id, ordinal, attempt)
        sketch, holes = job.symbolize(config)
        key = job_key(config, specification, job, options, holes=holes)
    except Exception as exc:
        return finish(
            JobResult(
                job=job, key=None, status=STATUS_ERROR, cached=False,
                duration_s=0.0, error=f"{type(exc).__name__}: {exc}",
                error_kind=error_kind(exc),
            )
        )

    try:
        if store is not None:
            answer = store.load(key, "explanation")
            readset = store.load(key, "readset")
            if answer is not None and readset is not None:
                universe = _sketch_universe_of(sketch)
                if readset_valid(readset, config, universe):
                    obs.metrics.count("farm.cache.full_hit")
                    # Only the subspec is needed from the stored answer
                    # (the payload itself is returned verbatim);
                    # rebuilding the full Explanation -- seed encode,
                    # simplified and projected terms -- would dominate
                    # the cached-hit path for nothing.
                    restored = subspec_from_dict(answer["subspec"])
                    audit = (
                        run_audit(
                            config, specification, job, options, store,
                            key, answer, obs, sketch=sketch, holes=holes,
                        )
                        if options.audit
                        else None
                    )
                    return finish(
                        JobResult(
                            job=job, key=key, status=STATUS_CACHED,
                            cached=True, duration_s=0.0,
                            subspec=restored.render(),
                            explanation=answer,
                            audit=audit,
                        )
                    )
                obs.metrics.count("farm.cache.invalidated")

        recorder = TransferRecorder(job.device)
        governor = (
            Governor.of(timeout=timeout, budget=budget)
            if timeout is not None or budget is not None
            else None
        )
        engine = ExplanationEngine(
            config,
            specification,
            max_path_length=options.max_path_length,
            projection_limit=options.projection_limit,
            ibgp=options.ibgp,
            governor=governor,
            obs=obs,
            stage_store=JobStore(store, key) if store is not None else None,
            recorder=recorder,
            shared=shared if governor is None else None,
        )
        explanation = job.run(engine)
        if shared is not None and governor is None:
            try:
                shared.certify(job, explanation, obs)
            except Exception:
                obs.metrics.count("smt.session.certify_errors")
        payload = _answer_payload(explanation)
        if store is not None and explanation.status is ExplanationStatus.EXACT:
            store.save(key, "explanation", payload)
            universe = _sketch_universe_of(sketch)
            store.save(key, "readset", recorder.payload(config, universe))
            _apply_corrupt_chaos(chaos, store, job.job_id, key, ordinal, attempt)
        audit = (
            run_audit(
                config, specification, job, options, store, key, payload,
                obs, sketch=sketch, holes=holes,
            )
            if options.audit
            and explanation.status is ExplanationStatus.EXACT
            else None
        )
        return finish(
            JobResult(
                job=job, key=key, status=explanation.status.value,
                cached=False, duration_s=0.0,
                subspec=explanation.subspec.render(),
                error=explanation.degradation,
                explanation=payload,
                audit=audit,
            )
        )
    except Exception as exc:
        return finish(
            JobResult(
                job=job, key=key, status=STATUS_ERROR, cached=False,
                duration_s=0.0, error=f"{type(exc).__name__}: {exc}",
                error_kind=error_kind(exc),
            )
        )


def shared_batch_key(
    config: NetworkConfig,
    specification: Specification,
    options: Optional[FarmOptions] = None,
) -> str:
    """The identity of one batch's shared caches.

    Covers everything a :class:`SharedCaches` instance bakes in: the
    full rendered configuration (shared seeds and simulations read all
    of it, unlike per-job keys), the specification, and the engine
    options.  Worker processes key their cache slot by it, so a process
    reused across different batches (or a configuration edit between
    incremental runs) can never serve stale shared state.
    """
    if options is None:
        options = FarmOptions()
    return digest(
        {
            "schema": SHARED_KEY_SCHEMA,
            "config": render_network(config),
            "specification": format_specification(specification),
            "managed": sorted(specification.managed),
            "options": options.payload(),
        }
    )


class _ResidentState(threading.local):
    """Per-thread resident state: the shared-cache slot and open
    :class:`ArtifactStore` handles.

    Thread-local rather than module-global because the serving layer
    now runs several in-process serial batches concurrently (one
    batch-runner thread each); a shared slot would race.  Fleet worker
    processes run their loop on one thread, so residency across
    batches is unchanged there -- and the serve queue keeps its runner
    threads alive across batches for the same reason.
    """

    def __init__(self) -> None:
        self.shared_key: Optional[str] = None
        self.shared: Optional[SharedCaches] = None
        self.stores: Dict[str, ArtifactStore] = {}


_RESIDENT = _ResidentState()

#: Process-local residency counters, shipped out of band by fleet
#: workers (never through :class:`JobResult` metrics: report documents
#: must stay byte-identical whether or not a fleet served them).
_RESIDENCY_LOCK = threading.Lock()
_RESIDENCY: Dict[str, int] = {}


def _note_residency(name: str, value: int = 1) -> None:
    with _RESIDENCY_LOCK:
        _RESIDENCY[name] = _RESIDENCY.get(name, 0) + value


def take_residency_stats() -> Dict[str, int]:
    """Drain this process's residency counters (fleet workers call
    this after every task and ship the deltas with the result)."""
    with _RESIDENCY_LOCK:
        stats = dict(_RESIDENCY)
        _RESIDENCY.clear()
    return stats


def reset_shared_slot() -> None:
    """Drop this thread's resident slot (shared caches + store handles).

    Serial batches run in the caller's own thread, so the slot -- and
    with it every memoized family SAT session -- survives from one
    batch to the next.  Cold measurements (the ``perline`` bench) and
    tests that assert on fresh-session counters call this first.
    """
    _RESIDENT.shared_key = None
    _RESIDENT.shared = None
    _RESIDENT.stores = {}


#: Hot-artifact capacity of resident store handles: how many payloads
#: a long-lived worker keeps in memory so repeat loads skip the
#: filesystem.  Payloads are a few KB of canonical JSON each, so the
#: worst case is a couple of MB per worker.
_RESIDENT_HOT_ARTIFACTS = 256

#: Effective hot-store capacity for *this* process; 0 everywhere except
#: fleet worker processes (see :func:`enable_hot_stores`).
_hot_store_capacity = 0


def enable_hot_stores(capacity: int = _RESIDENT_HOT_ARTIFACTS) -> None:
    """Turn on the hot-artifact cache for this process's store handles.

    Only fleet worker processes call this (at loop start): they are
    the sole owners of their cache reads, so serving repeat loads from
    memory is safe.  Everywhere else -- the CLI, the serve process, the
    test runner -- the cache stays off so that on-disk mutation between
    calls (a corrupted or pruned artifact) is observed immediately.
    """
    global _hot_store_capacity
    _hot_store_capacity = max(0, capacity)


def _store_for(cache_dir: str) -> ArtifactStore:
    """The resident store handle for ``cache_dir``.

    Handles persist across jobs and batches (with an in-memory
    hot-artifact cache in fleet workers, see :class:`ArtifactStore`);
    per-job stats are taken as deltas against a pre-job snapshot (see
    :func:`run_job`), so the reported counters match what a fresh
    handle would have shown.
    """
    store = _RESIDENT.stores.get(cache_dir)
    if store is None:
        store = ArtifactStore(cache_dir, hot_artifacts=_hot_store_capacity)
        _RESIDENT.stores[cache_dir] = store
        _note_residency("store_opens")
    else:
        _note_residency("store_resident_hits")
    return store


def _shared_for(
    key: str,
    config: NetworkConfig,
    specification: Specification,
    options: FarmOptions,
) -> SharedCaches:
    if _RESIDENT.shared is None or key != _RESIDENT.shared_key:
        _RESIDENT.shared = SharedCaches(
            config,
            specification,
            max_path_length=options.max_path_length,
            projection_limit=options.projection_limit,
            ibgp=options.ibgp,
        )
        _RESIDENT.shared_key = key
        _note_residency("shared_rebuilds")
    else:
        _note_residency("shared_warm_hits")
    return _RESIDENT.shared


def run_family(
    config: NetworkConfig,
    specification: Specification,
    jobs: Sequence[ExplainJob],
    options: Optional[FarmOptions] = None,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    budgets: Optional[Sequence[Optional[int]]] = None,
    attempts: Optional[Sequence[int]] = None,
    chaos: Optional[ChaosPlan] = None,
    shared_key: Optional[str] = None,
) -> List[JobResult]:
    """Answer one family's jobs in a single worker process.

    Members run back to back against one :class:`SharedCaches`, so the
    family's seed encode, simulations, statement terms and incremental
    SAT session are built once and reused.  Sharing is only enabled for
    ungoverned runs (no ``timeout``, no per-job budget) *and* when the
    caller supplies the batch's ``shared_key``; otherwise members run
    exactly as individually dispatched jobs.  Per-job cache keys,
    stores and read-sets are untouched either way -- a family is a
    dispatch unit, never a cache unit.
    """
    if options is None:
        options = FarmOptions()
    budget_list: List[Optional[int]] = (
        list(budgets) if budgets is not None else [None] * len(jobs)
    )
    attempt_list: List[int] = (
        list(attempts) if attempts is not None else [1] * len(jobs)
    )
    shared: Optional[SharedCaches] = None
    if (
        shared_key is not None
        and timeout is None
        and all(budget is None for budget in budget_list)
    ):
        shared = _shared_for(shared_key, config, specification, options)
        shared.register_family(jobs)
    results: List[JobResult] = []
    for job, budget, attempt in zip(jobs, budget_list, attempt_list):
        results.append(
            run_job(
                config, specification, job, options=options,
                cache_dir=cache_dir, timeout=timeout, budget=budget,
                attempt=attempt, chaos=chaos, shared=shared,
            )
        )
    if results:
        results[0].metrics.count("farm.families")
    return results
