"""The per-job runner (one call = one explanation question).

:func:`run_job` is a module-level function taking only picklable
arguments and returning a picklable :class:`JobResult`, so the pool can
ship it to worker processes unchanged; running it inline is the serial
(``-j 1``) fallback.

Per-job flow::

    symbolize -> key -> full-hit probe (answer + valid read-set?)
        hit:  return the stored answer (no pipeline work)
        miss: run the governed engine with a JobStore (partial stage
              hits resume mid-pipeline) and a TransferRecorder, then
              persist the answer + read-set iff the run was EXACT

Failures are contained: any exception becomes an ``ERROR`` result with
the per-job metrics collected so far -- one failing device never kills
the batch.  Each error is classified transient or permanent
(:func:`repro.runtime.error_kind`) inside the worker, so the
supervisor on the other side of the process boundary knows whether a
retry can help without re-raising anything.  Degraded (governed) runs
return their status but are never cached; a later run with more budget
must not be served a truncated answer.

Chaos hooks: when a :class:`~repro.runtime.ChaosPlan` rides along, the
worker consults it when it picks the job up (kill / hang / flaky) and
again after persisting artifacts (corrupt) -- see
``tests/farm/test_chaos.py`` for the recovery paths this exercises.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..bgp.config import NetworkConfig
from ..explain.engine import Explanation, ExplanationEngine, ExplanationStatus
from ..obs import Instrumentation, MetricsRegistry
from ..runtime import (
    CHAOS_CORRUPT,
    CHAOS_FLAKY,
    CHAOS_HANG,
    CHAOS_KILL,
    ChaosPlan,
    Governor,
    TransientError,
    error_kind,
)
from ..spec.ast import Specification
from ..synthesis.symexec import AttributeUniverse
from .invalidate import readset_valid
from .job import ExplainJob
from .keys import FarmOptions, job_key
from .readset import TransferRecorder
from .store import ArtifactStore, JobStore

__all__ = [
    "JobResult",
    "run_job",
    "STATUS_ERROR",
    "STATUS_CACHED",
    "STATUS_QUARANTINED",
]

#: Statuses beyond the engine's ExplanationStatus values.
STATUS_ERROR = "ERROR"
STATUS_CACHED = "CACHED"
#: Assigned by the supervisor when a job exhausts its retries.
STATUS_QUARANTINED = "QUARANTINED"

#: 1-based count of jobs this worker process has picked up; chaos
#: events can target "the Nth job of a worker" through it.
_JOB_ORDINAL = 0


@dataclass
class JobResult:
    """The picklable outcome of one job."""

    job: ExplainJob
    key: Optional[str]
    status: str
    cached: bool
    duration_s: float
    subspec: str = ""
    error: Optional[str] = None
    #: ``"transient"`` / ``"permanent"`` for errored jobs (the
    #: supervisor's retry decision), ``None`` otherwise.
    error_kind: Optional[str] = None
    #: How many attempts this job consumed (set by the supervisor; the
    #: unsupervised path always reports 1).
    attempts: int = 1
    #: Whether the job exhausted its retries and was quarantined.
    quarantined: bool = False
    #: The schema-stamped explanation payload (timings stripped), for
    #: ``--json`` reports and byte-level result comparisons.  ``None``
    #: for errored jobs.
    explanation: Optional[dict] = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def ok(self) -> bool:
        return self.status in (ExplanationStatus.EXACT.value, STATUS_CACHED)

    @property
    def degraded(self) -> bool:
        return self.status in (
            ExplanationStatus.DEGRADED_LIFT.value,
            ExplanationStatus.DEGRADED_RAW.value,
            ExplanationStatus.FAILED.value,
        )

    def row(self) -> Dict[str, object]:
        """One summary-table / JSON-report row."""
        return {
            "job": self.job.job_id,
            "status": self.status,
            "cached": self.cached,
            "duration_s": round(self.duration_s, 4),
            "key": self.key,
            "error": self.error,
            "error_kind": self.error_kind,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
        }


def _answer_payload(explanation: Explanation) -> dict:
    """The persistent form of an answer: timings are run-specific
    measurements, not part of the answer, so they are stripped to keep
    stored artifacts deterministic and byte-comparable."""
    payload = explanation.to_dict()
    payload["timings"] = {}
    return payload


def _sketch_universe_of(sketch: NetworkConfig) -> AttributeUniverse:
    configs = [
        sketch.router_config(name) for name in sketch.topology.router_names
    ]
    return AttributeUniverse.collect(configs, sketch.topology)


def _apply_pickup_chaos(
    chaos: Optional[ChaosPlan], job_id: str, ordinal: int, attempt: int
) -> None:
    """Kill / hang / flaky faults fire when the worker picks a job up."""
    if chaos is None:
        return
    if chaos.select(CHAOS_KILL, job_id, ordinal, attempt):
        os._exit(chaos.select(CHAOS_KILL, job_id, ordinal, attempt)[0].exit_code)
    for event in chaos.select(CHAOS_HANG, job_id, ordinal, attempt):
        time.sleep(event.seconds)
    for event in chaos.select(CHAOS_FLAKY, job_id, ordinal, attempt):
        raise TransientError(
            f"injected transient fault ({job_id} attempt {attempt})"
        )


def _apply_corrupt_chaos(
    chaos: Optional[ChaosPlan],
    store: Optional[ArtifactStore],
    job_id: str,
    key: str,
    ordinal: int,
    attempt: int,
) -> None:
    """Truncate stored artifacts the plan marks for corruption."""
    if chaos is None or store is None:
        return
    for event in chaos.select(CHAOS_CORRUPT, job_id, ordinal, attempt):
        path = store.path_for(key, event.stage)
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:
            pass


def run_job(
    config: NetworkConfig,
    specification: Specification,
    job: ExplainJob,
    options: Optional[FarmOptions] = None,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    budget: Optional[int] = None,
    attempt: int = 1,
    chaos: Optional[ChaosPlan] = None,
) -> JobResult:
    """Answer one job, consulting and feeding the artifact store."""
    global _JOB_ORDINAL
    _JOB_ORDINAL += 1
    ordinal = _JOB_ORDINAL
    if options is None:
        options = FarmOptions()
    started = time.perf_counter()
    obs = Instrumentation()
    store = ArtifactStore(cache_dir) if cache_dir is not None else None

    def finish(result: JobResult) -> JobResult:
        result.duration_s = time.perf_counter() - started
        if store is not None:
            for name, value in sorted(store.stats.items()):
                obs.metrics.count(f"farm.store.{name}", value)
        obs.metrics.count(f"farm.jobs.{result.status}")
        result.metrics = obs.metrics
        return result

    try:
        _apply_pickup_chaos(chaos, job.job_id, ordinal, attempt)
        sketch, holes = job.symbolize(config)
        key = job_key(config, specification, job, options, holes=holes)
    except Exception as exc:
        return finish(
            JobResult(
                job=job, key=None, status=STATUS_ERROR, cached=False,
                duration_s=0.0, error=f"{type(exc).__name__}: {exc}",
                error_kind=error_kind(exc),
            )
        )

    try:
        if store is not None:
            answer = store.load(key, "explanation")
            readset = store.load(key, "readset")
            if answer is not None and readset is not None:
                universe = _sketch_universe_of(sketch)
                if readset_valid(readset, config, universe):
                    obs.metrics.count("farm.cache.full_hit")
                    restored = Explanation.from_dict(answer)
                    return finish(
                        JobResult(
                            job=job, key=key, status=STATUS_CACHED,
                            cached=True, duration_s=0.0,
                            subspec=restored.subspec.render(),
                            explanation=answer,
                        )
                    )
                obs.metrics.count("farm.cache.invalidated")

        recorder = TransferRecorder(job.device)
        governor = (
            Governor.of(timeout=timeout, budget=budget)
            if timeout is not None or budget is not None
            else None
        )
        engine = ExplanationEngine(
            config,
            specification,
            max_path_length=options.max_path_length,
            projection_limit=options.projection_limit,
            ibgp=options.ibgp,
            governor=governor,
            obs=obs,
            stage_store=JobStore(store, key) if store is not None else None,
            recorder=recorder,
        )
        explanation = job.run(engine)
        payload = _answer_payload(explanation)
        if store is not None and explanation.status is ExplanationStatus.EXACT:
            store.save(key, "explanation", payload)
            universe = _sketch_universe_of(sketch)
            store.save(key, "readset", recorder.payload(config, universe))
            _apply_corrupt_chaos(chaos, store, job.job_id, key, ordinal, attempt)
        return finish(
            JobResult(
                job=job, key=key, status=explanation.status.value,
                cached=False, duration_s=0.0,
                subspec=explanation.subspec.render(),
                error=explanation.degradation,
                explanation=payload,
            )
        )
    except Exception as exc:
        return finish(
            JobResult(
                job=job, key=key, status=STATUS_ERROR, cached=False,
                duration_s=0.0, error=f"{type(exc).__name__}: {exc}",
                error_kind=error_kind(exc),
            )
        )
