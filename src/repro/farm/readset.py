"""Recording the rest-of-network slice an explanation actually reads.

A job's content-addressed key covers its *own* inputs; its dependency
on every other router's policy is dynamic -- the pipeline reads other
configurations only by pushing routes through their route-maps.  Those
transfers happen at exactly two seams:

* the **symbolic** seam -- :meth:`Encoder._state_of` applies a
  neighbor's export/import map to a :class:`SymbolicRoute` via
  :func:`apply_routemap_symbolic`;
* the **concrete** seam -- :func:`repro.bgp.simulation.simulate`
  applies export/import maps to concrete :class:`Announcement`\\ s.

:class:`TransferRecorder` taps both seams (the engine threads it
through), capturing ``(owner, direction, neighbor, input) -> output``
fingerprints for every transfer owned by *another* router -- including
identity transfers through absent maps and denials, so adding or
removing a map is visible.  The resulting read-set payload is stored
next to the cached answer; :mod:`repro.farm.invalidate` replays it
against an edited configuration to decide whether the answer is stale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bgp.announcement import Announcement, Community
from ..bgp.config import NetworkConfig
from ..bgp.render import render_routemap
from ..smt.serialize import term_from_payload, term_to_payload
from ..synthesis.symexec import AttributeUniverse, SymbolicRoute
from ..topology.prefixes import Prefix
from .keys import digest

__all__ = [
    "READSET_SCHEMA",
    "TransferRecorder",
    "symbolic_route_to_payload",
    "symbolic_route_from_payload",
    "universe_payload",
]

READSET_SCHEMA = "repro-farm-readset/1"

SYMBOLIC = "symbolic"
CONCRETE = "concrete"


def symbolic_route_to_payload(route: SymbolicRoute) -> Dict[str, object]:
    """A self-contained JSON encoding of a symbolic attribute state."""
    return {
        "prefix": str(route.prefix),
        "local_pref": term_to_payload(route.local_pref),
        "med": term_to_payload(route.med),
        "next_hop": term_to_payload(route.next_hop),
        "communities": [
            [str(community), term_to_payload(route.communities[community])]
            for community in sorted(route.communities, key=str)
        ],
    }


def symbolic_route_from_payload(payload: Dict[str, object]) -> SymbolicRoute:
    return SymbolicRoute(
        prefix=Prefix(str(payload["prefix"])),
        local_pref=term_from_payload(payload["local_pref"]),
        med=term_from_payload(payload["med"]),
        next_hop=term_from_payload(payload["next_hop"]),
        communities={
            Community.parse(str(text)): term_from_payload(term)
            for text, term in payload["communities"]  # type: ignore[union-attr]
        },
    )


def universe_payload(universe: AttributeUniverse) -> Dict[str, object]:
    """The attribute vocabulary a symbolic replay must agree on."""
    return {
        "communities": [str(c) for c in universe.communities],
        "next_hops": list(universe.next_hop_sort.values),
    }


def symbolic_output_fingerprint(
    permit, state: SymbolicRoute
) -> str:
    return digest(
        {"permit": term_to_payload(permit), "state": symbolic_route_to_payload(state)}
    )


def concrete_output_fingerprint(result: Optional[Announcement]) -> Optional[str]:
    if result is None:
        return None  # an explicit denial is itself an observation
    return digest(result.to_dict())


class TransferRecorder:
    """Observes every route-map transfer of one explanation question.

    Transfers owned by ``device`` itself are skipped: the device's own
    configuration is part of the static key (and its maps carry the
    question's holes).  Entries are deduplicated on
    ``(seam, owner, direction, neighbor, input fingerprint)``; the
    pipeline pushes the same routes through the same maps many times
    (per candidate assignment, per simulation round), and one record
    per distinct input suffices for replay.
    """

    def __init__(self, device: str) -> None:
        self.device = device
        #: (seam, owner, direction, neighbor, input fp) -> entry dict
        self._entries: Dict[Tuple[str, str, str, str, str], Dict[str, object]] = {}

    # -- the two seams -------------------------------------------------

    def symbolic(
        self,
        owner: str,
        direction: str,
        neighbor: str,
        state_in: SymbolicRoute,
        permit,
        state_out: SymbolicRoute,
    ) -> None:
        """One symbolic transfer through ``owner``'s map (may be absent)."""
        if owner == self.device:
            return
        input_payload = symbolic_route_to_payload(state_in)
        key = (SYMBOLIC, owner, direction, neighbor, digest(input_payload))
        if key in self._entries:
            return
        self._entries[key] = {
            "seam": SYMBOLIC,
            "owner": owner,
            "direction": direction,
            "neighbor": neighbor,
            "input": input_payload,
            "output": symbolic_output_fingerprint(permit, state_out),
        }

    def concrete(
        self,
        owner: str,
        direction: str,
        neighbor: str,
        announcement: Announcement,
        result: Optional[Announcement],
    ) -> None:
        """One concrete transfer through ``owner``'s map (may be absent)."""
        if owner == self.device:
            return
        input_payload = announcement.to_dict()
        key = (CONCRETE, owner, direction, neighbor, digest(input_payload))
        if key in self._entries:
            return
        self._entries[key] = {
            "seam": CONCRETE,
            "owner": owner,
            "direction": direction,
            "neighbor": neighbor,
            "input": input_payload,
            "output": concrete_output_fingerprint(result),
        }

    # -- export --------------------------------------------------------

    def seams(self) -> List[Tuple[str, str, str]]:
        """Every (owner, direction, neighbor) triple touched."""
        return sorted({key[1:4] for key in self._entries})

    def payload(
        self, config: NetworkConfig, universe: AttributeUniverse
    ) -> Dict[str, object]:
        """The full read-set document to store next to the answer.

        ``config`` must be the configuration the recording ran against:
        each touched seam's route-map is snapshotted as rendered text,
        giving validation a fast textually-unchanged path before it
        falls back to semantic replay.
        """
        maps = []
        for owner, direction, neighbor in self.seams():
            routemap = config.get_map(owner, direction, neighbor)
            maps.append(
                [
                    owner,
                    direction,
                    neighbor,
                    render_routemap(routemap) if routemap is not None else None,
                ]
            )
        return {
            "schema": READSET_SCHEMA,
            "device": self.device,
            "universe": universe_payload(universe),
            "maps": maps,
            "entries": [
                self._entries[key] for key in sorted(self._entries)
            ],
        }

    def __len__(self) -> int:
        return len(self._entries)
