"""The batch job model: one explanation question per job.

An :class:`ExplainJob` names a question the farm can answer
independently of every other job: explain the given field kinds of one
device (whole-router granularity) or of one route-map line, against one
requirement block.  Jobs are frozen, hashable and picklable, so they
travel to worker processes and serve as report keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bgp.config import NetworkConfig
from ..explain.symbolize import (
    ACTION,
    SymbolizationError,
    symbolize_line,
    symbolize_router,
)
from ..spec.ast import Specification

__all__ = ["ExplainJob", "JobFamily", "enumerate_jobs", "group_families"]

ROUTER = "router"
LINE = "line"


@dataclass(frozen=True)
class ExplainJob:
    """One explanation question: device x granularity x requirement.

    ``direction``/``neighbor``/``seq`` are only meaningful at ``line``
    granularity; ``requirement`` of ``None`` asks against the whole
    specification.
    """

    device: str
    granularity: str = ROUTER
    requirement: Optional[str] = None
    fields: Tuple[str, ...] = (ACTION,)
    direction: Optional[str] = None
    neighbor: Optional[str] = None
    seq: Optional[int] = None

    def __post_init__(self) -> None:
        if self.granularity not in (ROUTER, LINE):
            raise ValueError(f"unknown granularity {self.granularity!r}")
        if self.granularity == LINE and (
            self.direction is None or self.neighbor is None or self.seq is None
        ):
            raise ValueError("line jobs need direction, neighbor and seq")

    @property
    def job_id(self) -> str:
        """A short human-readable identifier, unique within a batch."""
        requirement = self.requirement if self.requirement is not None else "<all>"
        if self.granularity == LINE:
            return f"{self.device}/{self.direction}.{self.neighbor}.{self.seq}/{requirement}"
        return f"{self.device}/router/{requirement}"

    def payload(self) -> Dict[str, object]:
        """The job's contribution to its content-addressed key."""
        return {
            "device": self.device,
            "granularity": self.granularity,
            "requirement": self.requirement,
            "fields": list(self.fields),
            "direction": self.direction,
            "neighbor": self.neighbor,
            "seq": self.seq,
        }

    def symbolize(self, config: NetworkConfig):
        """The (sketch, holes) pair this job's question symbolizes."""
        if self.granularity == LINE:
            assert self.direction is not None and self.neighbor is not None
            assert self.seq is not None
            return symbolize_line(
                config, self.device, self.direction, self.neighbor, self.seq,
                self.fields,
            )
        return symbolize_router(config, self.device, self.fields)

    def run(self, engine):
        """Answer this question through an :class:`ExplanationEngine`."""
        if self.granularity == LINE:
            return engine.explain_line(
                self.device, self.direction, self.neighbor, self.seq,
                fields=self.fields, requirement=self.requirement,
            )
        return engine.explain_router(
            self.device, fields=self.fields, requirement=self.requirement
        )


@dataclass(frozen=True)
class JobFamily:
    """The sibling jobs of one (device, requirement block) group.

    Per-line jobs of one router asked against one requirement differ
    only in which line they symbolize; dispatching them to the same
    worker lets it share the seed encode, simulations, statement terms
    and one incremental SAT session across the whole group (see
    :mod:`repro.explain.family`).  A router-granularity job is its own
    singleton family.  ``index`` preserves the family's first
    appearance so batch reports keep the original job order.
    """

    index: int
    jobs: Tuple[ExplainJob, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a job family cannot be empty")

    @property
    def key(self) -> Tuple[object, ...]:
        first = self.jobs[0]
        return (
            first.device, first.requirement, first.granularity,
            tuple(first.fields),
        )

    @property
    def family_id(self) -> str:
        first = self.jobs[0]
        requirement = first.requirement if first.requirement is not None else "<all>"
        return f"{first.device}/{first.granularity}/{requirement}"

    def __len__(self) -> int:
        return len(self.jobs)


def group_families(jobs: List[ExplainJob]) -> List[JobFamily]:
    """Group a batch into families, in first-appearance order.

    Jobs sharing (device, requirement, granularity, fields) land in one
    family; order within a family and across families follows the input
    (which :func:`enumerate_jobs` keeps deterministic).
    """
    grouped: Dict[Tuple[object, ...], List[ExplainJob]] = {}
    order: List[Tuple[object, ...]] = []
    for job in jobs:
        key = (job.device, job.requirement, job.granularity, tuple(job.fields))
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(job)
    return [
        JobFamily(index=index, jobs=tuple(grouped[key]))
        for index, key in enumerate(order)
    ]


def enumerate_jobs(
    config: NetworkConfig,
    specification: Specification,
    per_line: bool = False,
    fields: Tuple[str, ...] = (ACTION,),
) -> List[ExplainJob]:
    """Every answerable question of a scenario, in deterministic order.

    One job per (managed router, requirement block) -- or per
    (route-map line, requirement block) with ``per_line`` -- skipping
    routers that have nothing to symbolize (no attached route-map
    lines).  The order is sorted by device then requirement so batch
    reports are stable across runs.
    """
    managed = sorted(specification.managed) or sorted(
        config.topology.router_names
    )
    requirements = [block.name for block in specification.blocks]
    jobs: List[ExplainJob] = []
    for device in managed:
        router_config = config.router_config(device)
        sessions = [
            (direction, neighbor)
            for direction, neighbor in router_config.sessions()
            if router_config.get_map(direction, neighbor).lines
        ]
        if not sessions:
            continue  # nothing to symbolize; symbolize_router would raise
        for requirement in requirements:
            if per_line:
                for direction, neighbor in sessions:
                    routemap = router_config.get_map(direction, neighbor)
                    for line in routemap.lines:
                        jobs.append(
                            ExplainJob(
                                device=device,
                                granularity=LINE,
                                requirement=requirement,
                                fields=fields,
                                direction=direction,
                                neighbor=neighbor,
                                seq=line.seq,
                            )
                        )
            else:
                jobs.append(
                    ExplainJob(
                        device=device, requirement=requirement, fields=fields
                    )
                )
    # Defensive double-check: drop anything symbolization rejects so a
    # single odd device cannot poison the whole batch.
    answerable: List[ExplainJob] = []
    for job in jobs:
        try:
            job.symbolize(config)
        except SymbolizationError:
            continue
        answerable.append(job)
    return answerable
