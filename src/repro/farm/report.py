"""The single source of truth for batch-report vocabulary and shape.

Three consumers need to agree on what a batch run *says*: the
``explain-all`` CLI (summary table, ``--json`` document, exit code),
the HTTP serving layer (job status and result documents), and the
typed :mod:`repro.api` facade.  Before this module each of them
hand-rolled its own status strings and dict plumbing; now everything
-- the status taxonomy (``EXACT`` / ``DEGRADED_*`` / ``FAILED`` /
``ERROR`` / ``CACHED`` / ``QUARANTINED``), the process exit codes
(3/4/5/6/7/70), the ``repro-farm-report/2`` JSON document and the
human summary table -- is defined here once and imported everywhere
else.

The functions are deliberately duck-typed over
:class:`repro.farm.pool.BatchReport` and
:class:`repro.farm.worker.JobResult` (this module sits *below* both in
the import graph), and the document/table output is regression-tested
byte-for-byte against goldens captured before the extraction
(``tests/farm/test_report.py``): moving the code must not move the
bytes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = [
    "REPORT_SCHEMA",
    "STATUS_EXACT",
    "STATUS_DEGRADED_LIFT",
    "STATUS_DEGRADED_RAW",
    "STATUS_FAILED",
    "STATUS_ERROR",
    "STATUS_CACHED",
    "STATUS_QUARANTINED",
    "OK_STATUSES",
    "DEGRADED_STATUSES",
    "ALL_STATUSES",
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "EXIT_TIMEOUT",
    "EXIT_BUDGET",
    "EXIT_CANCELLED",
    "EXIT_UNSAT",
    "EXIT_PARTIAL",
    "EXIT_INTERNAL",
    "audit_totals",
    "job_row",
    "report_document",
    "report_totals",
    "summary_table",
    "summary_from_document",
    "exit_code",
    "normalize_document",
    "dump_document",
]

#: Bumped whenever the ``--json`` document shape changes.  ``/2``
#: added the per-job ``audit`` field, the top-level ``audit`` section
#: and the ``audited``/``audit_refuted`` totals.
REPORT_SCHEMA = "repro-farm-report/2"

# ---------------------------------------------------------------------------
# The status taxonomy.
#
# The first four mirror repro.explain.ExplanationStatus (the engine's
# degradation ladder); the rest are farm-level outcomes a job can have
# without the engine ever running.  The enum values are duplicated here
# as plain strings on purpose: this module is the vocabulary the wire
# formats promise, and must not drift silently with engine internals
# (``tests/farm/test_report.py`` pins the correspondence).

STATUS_EXACT = "EXACT"
STATUS_DEGRADED_LIFT = "DEGRADED_LIFT"
STATUS_DEGRADED_RAW = "DEGRADED_RAW"
STATUS_FAILED = "FAILED"
#: The job raised (worker-side); ``error_kind`` says transient/permanent.
STATUS_ERROR = "ERROR"
#: Served whole from the artifact store (answer + valid read-set).
STATUS_CACHED = "CACHED"
#: Exhausted its supervised retries; in the quarantine ledger.
STATUS_QUARANTINED = "QUARANTINED"

#: Statuses counting as a successful answer.
OK_STATUSES = frozenset({STATUS_EXACT, STATUS_CACHED})
#: Statuses meaning "the engine ran but was cut short".
DEGRADED_STATUSES = frozenset(
    {STATUS_DEGRADED_LIFT, STATUS_DEGRADED_RAW, STATUS_FAILED}
)
ALL_STATUSES = frozenset(
    {
        STATUS_EXACT,
        STATUS_DEGRADED_LIFT,
        STATUS_DEGRADED_RAW,
        STATUS_FAILED,
        STATUS_ERROR,
        STATUS_CACHED,
        STATUS_QUARANTINED,
    }
)

# ---------------------------------------------------------------------------
# Exit codes (shared by the CLI and the serving layer's job documents).
# argparse itself uses 2 for usage errors.

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_TIMEOUT = 3
EXIT_BUDGET = 4
EXIT_CANCELLED = 5
EXIT_UNSAT = 6
#: A supervised batch completed, but some jobs were quarantined after
#: exhausting their retries: the report is partial but honest.
EXIT_PARTIAL = 7
EXIT_INTERNAL = 70


# ---------------------------------------------------------------------------
# The JSON document (the CLI's --json file, the server's result body)


def job_row(result: Any) -> Dict[str, object]:
    """One summary-table / JSON-report row for a ``JobResult``."""
    return {
        "job": result.job.job_id,
        "status": result.status,
        "cached": result.cached,
        "duration_s": round(result.duration_s, 4),
        "key": result.key,
        "error": result.error,
        "error_kind": result.error_kind,
        "attempts": result.attempts,
        "quarantined": result.quarantined,
        "audit": getattr(result, "audit", None),
    }


def report_totals(report: Any) -> Dict[str, int]:
    """The ``totals`` section of the document."""
    return {
        "jobs": len(report.results),
        "completed": report.completed,
        "cached": report.cached,
        "degraded": report.degraded,
        "failed": report.failed,
        "quarantined": report.quarantined,
        "retried": report.retried,
    }


def audit_totals(rows: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """The top-level ``audit`` section, aggregated over job rows.

    ``None`` when no job carried an audit payload (the batch ran with
    auditing off), so non-audit documents stay recognisably audit-free
    rather than growing a section of zeroes.
    """
    audits = [row.get("audit") for row in rows]
    payloads = [audit for audit in audits if isinstance(audit, dict)]
    if not payloads:
        return None
    verdicts: Dict[str, int] = {}
    refuted = repaired = relifts = 0
    for payload in payloads:
        verdict = str(payload.get("verdict"))
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        relifts += int(payload.get("relifts", 0))  # type: ignore[arg-type]
        if payload.get("repaired"):
            repaired += 1
        elif verdict in ("too-weak", "too-strong"):
            refuted += 1
    return {
        "audited": len(payloads),
        "verdicts": dict(sorted(verdicts.items())),
        "refuted": refuted,
        "repaired": repaired,
        "relifts": relifts,
    }


def report_document(report: Any) -> Dict[str, object]:
    """The schema-versioned ``--json`` report document.

    Accepts a :class:`repro.farm.pool.BatchReport`; this is the one
    place its JSON shape is defined.
    """
    farm_counters = {
        name: value
        for name, value in sorted(report.metrics.counters.items())
        if name.startswith(("farm.", "smt.", "engine.", "audit."))
    }
    rows = [job_row(result) for result in report.results]
    return {
        "schema": REPORT_SCHEMA,
        "scenario": report.scenario,
        "workers": report.workers,
        "wall_s": round(report.wall_s, 4),
        "cpu_s": round(report.cpu_s, 4),
        "jobs": rows,
        "totals": report_totals(report),
        "audit": audit_totals(rows),
        "stage_cache_rate": report.stage_cache_rate(),
        "counters": farm_counters,
        "bench": report.to_bench_report().to_dict(),
    }


def dump_document(document: Dict[str, object]) -> str:
    """The byte-exact serialization ``--json`` writes to disk."""
    return json.dumps(document, indent=2) + "\n"


def _render_table(
    rows: List[tuple],
    totals: Dict[str, int],
    wall_s: float,
    cpu_s: float,
    workers: int,
    rate: Optional[float],
    audit: Optional[Dict[str, object]] = None,
) -> str:
    rows = [("job", "status", "cached", "tries", "time")] + rows
    widths = [max(len(row[i]) for row in rows) for i in range(5)]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    lines.append("")
    lines.append(
        f"{totals['jobs']} jobs: {totals['completed']} ok "
        f"({totals['cached']} from cache), {totals['degraded']} degraded, "
        f"{totals['failed']} failed, {totals['quarantined']} quarantined"
    )
    if audit is not None:
        verdicts = audit.get("verdicts") or {}
        confirmed = verdicts.get("confirmed", 0)  # type: ignore[union-attr]
        lines.append(
            f"audit: {audit['audited']} audited, {confirmed} confirmed, "
            f"{audit['refuted']} refuted, {audit['repaired']} repaired"
        )
    lines.append(f"wall {wall_s:.2f}s, cpu {cpu_s:.2f}s, workers {workers}")
    if rate is not None:
        lines.append(f"stage cache hit rate: {rate:.0%}")
    return "\n".join(lines)


def summary_table(report: Any) -> str:
    """The human-readable per-job table plus batch totals."""
    rows = [
        (
            result.job.job_id,
            result.status,
            "yes" if result.cached else "no",
            str(result.attempts),
            f"{result.duration_s:.2f}s",
        )
        for result in report.results
    ]
    return _render_table(
        rows,
        report_totals(report),
        report.wall_s,
        report.cpu_s,
        report.workers,
        report.stage_cache_rate(),
        audit_totals([job_row(result) for result in report.results]),
    )


def summary_from_document(document: Dict[str, object]) -> str:
    """:func:`summary_table` recomputed from a report *document*.

    Front-ends holding only the JSON document (the typed facade, the
    serving layer) render the same table the CLI prints, without
    needing the live ``BatchReport``.
    """
    rows = [
        (
            str(row["job"]),
            str(row["status"]),
            "yes" if row["cached"] else "no",
            str(row["attempts"]),
            f"{float(row['duration_s']):.2f}s",  # type: ignore[arg-type]
        )
        for row in document.get("jobs", ())  # type: ignore[union-attr]
    ]
    totals = document.get("totals")
    if not isinstance(totals, dict):
        totals = {
            "jobs": 0, "completed": 0, "cached": 0,
            "degraded": 0, "failed": 0, "quarantined": 0,
        }
    audit = document.get("audit")
    return _render_table(
        rows,
        totals,
        float(document.get("wall_s", 0.0)),  # type: ignore[arg-type]
        float(document.get("cpu_s", 0.0)),  # type: ignore[arg-type]
        int(document.get("workers", 1)),  # type: ignore[arg-type]
        document.get("stage_cache_rate"),  # type: ignore[arg-type]
        audit if isinstance(audit, dict) else None,
    )


def exit_code(
    report: Any,
    timeout: Optional[float] = None,
    budget: Optional[int] = None,
) -> int:
    """The process exit code a finished batch maps to.

    This is the ``explain-all`` contract, verbatim: failures dominate
    quarantine dominates degradation; a degraded batch blames the
    timeout when only a timeout was set (per-job governors live in the
    workers, so the batch cannot ask which limit actually fired and
    maps from the flags instead).  A refuted audit -- the explanation
    itself was proven wrong -- counts as failure even when every job
    nominally succeeded.
    """
    if report.failed:
        return EXIT_FAILURE
    if getattr(report, "audit_refuted", 0):
        return EXIT_FAILURE
    if report.quarantined:
        return EXIT_PARTIAL
    if report.degraded:
        if timeout is not None and budget is None:
            return EXIT_TIMEOUT
        return EXIT_BUDGET
    return EXIT_OK


# ---------------------------------------------------------------------------
# Run-to-run comparison


#: Timing fields that legitimately differ between two runs computing
#: the same answers.
_VOLATILE_TOP = ("wall_s", "cpu_s")
_VOLATILE_ROW = ("duration_s",)
_VOLATILE_STAGE = ("median_s", "p95_s", "total_s")


def normalize_document(document: Dict[str, object]) -> Dict[str, object]:
    """A copy of ``document`` with run-specific timings zeroed.

    Two batches that computed identical *answers* -- same jobs, same
    statuses, same cache behaviour, same work counters -- produce
    byte-identical normalized documents even though their wall clocks
    differ.  This is what the serve-vs-CLI equivalence tests and the CI
    smoke compare.
    """
    normalized: Dict[str, object] = dict(document)
    for name in _VOLATILE_TOP:
        if name in normalized:
            normalized[name] = 0.0
    rows: List[Dict[str, object]] = []
    for row in normalized.get("jobs", ()):  # type: ignore[union-attr]
        row = dict(row)
        for name in _VOLATILE_ROW:
            if name in row:
                row[name] = 0.0
        rows.append(row)
    normalized["jobs"] = rows
    bench = normalized.get("bench")
    if isinstance(bench, dict):
        bench = dict(bench)
        bench["calibration_s"] = None
        stages = []
        for stage in bench.get("stages", ()):
            stage = dict(stage)
            for name in _VOLATILE_STAGE:
                if name in stage:
                    stage[name] = 0.0
            stages.append(stage)
        bench["stages"] = stages
        normalized["bench"] = bench
    return normalized
