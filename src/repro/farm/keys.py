"""Content-addressed job keys.

A job's key is the SHA-256 digest of a canonical-JSON payload covering
everything the answer depends on *through the job's own inputs*: the
topology, the specification text, the device's rendered configuration,
the symbolized hole domains, and the engine options.  Deliberately
absent is the rest of the network's configuration -- that dependency is
captured dynamically by the recorded read-set
(:mod:`repro.farm.readset`) and validated by replay at lookup time, so
an edit to an unrelated router never changes a job's key (and therefore
never evicts its cached answer).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.render import render_router
from ..bgp.sketch import Hole
from ..spec.ast import Specification
from ..spec.printer import format_specification
from ..topology.graph import Topology

__all__ = ["FarmOptions", "canonical_json", "digest", "job_key", "KEY_SCHEMA"]

#: Bumped whenever the key payload shape changes, so stale cache
#: entries from older code can never be served.
KEY_SCHEMA = "repro-farm-key/1"


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, pure ASCII."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def digest(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


@dataclass(frozen=True)
class FarmOptions:
    """Engine options a batch run is keyed (and constructed) with.

    The farm deliberately exposes only the picklable subset of the
    engine's knobs: ``link_cost`` callables and custom rewrite-rule
    sets cannot cross a process boundary, so batch runs always use the
    default rule set and no hot-potato costs.

    ``audit``/``audit_seed`` switch on the adversarial audit stage
    (:mod:`repro.audit`).  They are deliberately *excluded* from
    :meth:`payload` -- and therefore from job keys, shared-cache keys
    and journal signatures of non-audit runs -- because auditing is
    observational: it never changes an answer, so flipping it on must
    neither evict cached explanations nor re-key a batch.  The audit
    artifact itself is content-addressed separately (see
    :meth:`audit_payload` and ``repro.farm.worker.audit_artifact_key``).
    """

    fields: Tuple[str, ...] = ("action",)
    projection_limit: int = 4096
    max_path_length: Optional[int] = None
    ibgp: bool = False
    audit: bool = False
    audit_seed: int = 0

    def payload(self) -> Dict[str, object]:
        return {
            "fields": list(self.fields),
            "projection_limit": self.projection_limit,
            "max_path_length": self.max_path_length,
            "ibgp": self.ibgp,
        }

    def audit_payload(self) -> Dict[str, object]:
        """The audit knobs, for signatures of audit-enabled runs."""
        return {"audit": self.audit, "audit_seed": self.audit_seed}


def topology_payload(topology: Topology) -> Dict[str, object]:
    """A canonical description of the topology."""
    return {
        "name": topology.name,
        "routers": [
            {
                "name": router.name,
                "asn": router.asn,
                "originated": [str(prefix) for prefix in router.originated],
                "role": router.role,
            }
            for router in sorted(topology.routers, key=lambda r: r.name)
        ],
        "links": sorted(sorted((link.a, link.b)) for link in topology.links),
    }


def spec_payload(specification: Specification) -> Dict[str, object]:
    return {
        "text": format_specification(specification),
        "managed": sorted(specification.managed),
    }


def holes_payload(holes: Dict[str, Hole]) -> list:
    """Hole names and stringified domains, in name order."""
    return [
        [name, [str(value) for value in holes[name].domain]]
        for name in sorted(holes)
    ]


def job_key(
    config: NetworkConfig,
    specification: Specification,
    job,
    options: FarmOptions,
    holes: Optional[Dict[str, Hole]] = None,
) -> str:
    """The content-addressed cache key for ``job`` under ``config``.

    ``holes`` may be passed when the caller has already symbolized the
    job (the worker does), avoiding a second symbolization.
    """
    if holes is None:
        _, holes = job.symbolize(config)
    payload = {
        "schema": KEY_SCHEMA,
        "topology": topology_payload(config.topology),
        "spec": spec_payload(specification),
        "job": job.payload(),
        "own_config": render_router(config.router_config(job.device)),
        "holes": holes_payload(holes),
        "options": options.payload(),
    }
    return digest(payload)
