"""repro.farm: the parallel batch-explanation service.

Explaining every managed router of a scenario re-runs the same
pipeline many times over inputs that barely change between invocations,
so the farm wraps the :class:`~repro.explain.ExplanationEngine` in a
build-system shell:

* :mod:`repro.farm.job` -- one :class:`ExplainJob` per (device,
  granularity, requirement) question, enumerated from a specification;
* :mod:`repro.farm.keys` -- a deterministic content-addressed key per
  job, derived from everything the job's *own* inputs pin down
  (topology, specification, the device's rendered configuration and
  symbolized hole domains, engine options);
* :mod:`repro.farm.readset` -- a recorder for the rest-of-network
  slice a job actually reads (every route-map transfer at the symbolic
  and concrete seams), stored next to the answer;
* :mod:`repro.farm.store` -- the persistent on-disk artifact store
  with schema versions and integrity hashes, memoizing per-stage
  pipeline artifacts so interrupted runs resume mid-pipeline;
* :mod:`repro.farm.invalidate` -- incremental invalidation: replaying
  a stored read-set against an edited configuration decides whether a
  cached answer is still exact, so a one-device edit re-runs only that
  device's jobs;
* :mod:`repro.farm.worker` / :mod:`repro.farm.pool` -- the per-job
  runner (governed, gracefully degrading) and the process pool that
  fans work out and folds per-worker metrics into one report.
  Dispatch is per :class:`JobFamily` -- the per-line questions of one
  (device, requirement block) run back to back in one worker against
  the shared caches of :mod:`repro.explain.family`, including one
  incremental SAT session per family (solve once per router, assume
  per hole);
* :mod:`repro.farm.supervise` -- the fault-tolerant supervisor:
  per-job hang watchdog, retry with capped backoff + deterministic
  jitter for transient failures, a quarantine ledger for jobs that
  exhaust their retries, and a crash-safe run journal that lets a
  killed batch ``--resume`` with only its unfinished jobs.

The CLI front-end is ``python -m repro.cli explain-all``; see
``docs/farm.md`` for the architecture.
"""

import warnings
from typing import Any

from .fleet import FleetStats, WorkerFleet
from .invalidate import compute_dirty, readset_valid, sketch_universe
from .job import ExplainJob, JobFamily, enumerate_jobs, group_families
from .keys import FarmOptions, canonical_json, digest, job_key
from .pool import BatchReport
from .readset import TransferRecorder
from .report import (
    EXIT_BUDGET,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_TIMEOUT,
    REPORT_SCHEMA,
    STATUS_CACHED,
    STATUS_DEGRADED_LIFT,
    STATUS_DEGRADED_RAW,
    STATUS_ERROR,
    STATUS_EXACT,
    STATUS_FAILED,
    STATUS_QUARANTINED,
    normalize_document,
)
from .store import ArtifactStore, JobStore, StoreError
from .supervise import (
    RunJournal,
    SupervisePolicy,
    Supervisor,
    batch_signature,
)
from .worker import (
    JobResult,
    reset_shared_slot,
    run_family,
    run_job,
    shared_batch_key,
)

# The batch entrypoints moved behind the typed facade in ``repro.api``
# (``explain_batch`` and friends); importing them from the farm root is
# deprecated for one release.  PEP 562 module ``__getattr__`` keeps
# ``from repro.farm import run_batch`` working -- with a warning --
# while internal callers import from ``.pool`` / ``.supervise``
# directly and stay silent.
_DEPRECATED_ENTRYPOINTS = {
    "run_batch": ("pool", "repro.api.explain_batch"),
    "run_incremental": ("pool", "repro.api.explain_batch (with since=...)"),
    "run_supervised": ("supervise", "repro.api.explain_batch"),
}


def __getattr__(name: str) -> Any:
    moved = _DEPRECATED_ENTRYPOINTS.get(name)
    if moved is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    submodule, replacement = moved
    warnings.warn(
        f"importing {name!r} from repro.farm is deprecated; "
        f"use {replacement} or repro.farm.{submodule}.{name}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(f".{submodule}", __name__), name)


__all__ = [
    "ExplainJob",
    "JobFamily",
    "enumerate_jobs",
    "group_families",
    "FarmOptions",
    "canonical_json",
    "digest",
    "job_key",
    "TransferRecorder",
    "ArtifactStore",
    "JobStore",
    "StoreError",
    "compute_dirty",
    "readset_valid",
    "sketch_universe",
    "JobResult",
    "FleetStats",
    "WorkerFleet",
    "reset_shared_slot",
    "run_family",
    "run_job",
    "shared_batch_key",
    "BatchReport",
    "run_batch",
    "run_incremental",
    "RunJournal",
    "SupervisePolicy",
    "Supervisor",
    "batch_signature",
    "run_supervised",
    "REPORT_SCHEMA",
    "STATUS_EXACT",
    "STATUS_DEGRADED_LIFT",
    "STATUS_DEGRADED_RAW",
    "STATUS_FAILED",
    "STATUS_ERROR",
    "STATUS_CACHED",
    "STATUS_QUARANTINED",
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_TIMEOUT",
    "EXIT_BUDGET",
    "EXIT_PARTIAL",
    "normalize_document",
]
