"""The persistent worker fleet: processes that outlive their batches.

:mod:`repro.farm.pool` and the :class:`~repro.farm.supervise.Supervisor`
historically built a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
per batch, so every batch paid process spawn *and* started with cold
in-worker caches (the :class:`~repro.explain.family.SharedCaches` slot,
the resident :class:`~repro.farm.store.ArtifactStore` handle, the warm
incremental SAT sessions).  A :class:`WorkerFleet` keeps one set of
worker processes alive for the lifetime of the owning process -- the
serving layer spins one up at boot -- and batches borrow workers from
it instead of forking their own.

Design points:

* **Claim-based dispatch.**  Tasks queue fleet-side; the first worker
  to go idle claims the next task.  The fleet assigns a task to a
  specific worker *before* shipping it, so the parent always knows
  exactly which task a dead worker was holding -- no claimed-but-
  unacknowledged limbo.
* **Fair streams.**  A submitter may tag tasks with a ``stream`` (the
  supervisor uses one stream per batch): claims rotate round-robin
  over streams with queued work, and a stream's ``cap`` bounds how
  many workers it may hold at once (the request's ``workers``).
  Batches therefore dispatch *deeply* -- every family queued
  fleet-side up front -- without monopolizing the fleet, and an idle
  worker picks up the next family the instant one finishes instead of
  waiting a supervisor round-trip.
* **Crash containment.**  A worker that dies (chaos kill, OOM, C-level
  abort) fails *only its own claimed task* -- its future raises
  :class:`~repro.runtime.WorkerCrash` -- and is replaced by a fresh
  process immediately.  Other workers, and therefore other batches
  multiplexed onto the fleet, keep running.  (Contrast
  ``ProcessPoolExecutor``, where one dead child breaks the whole pool
  and every in-flight future.)  Results travel over one single-writer
  pipe per worker -- never a queue shared between workers -- so a
  worker dying mid-send cannot poison a cross-process lock that other
  workers' result sends depend on.
* **Targeted hang recovery.**  :meth:`WorkerFleet.kill_task` terminates
  just the worker holding one task (the supervisor's watchdog calls
  it); the replacement worker spawns before the call returns to the
  monitor loop.
* **Resident-state accounting.**  Workers report their process-local
  residency counters (shared-cache warm hits, resident store handles)
  out of band with each result, so fleet warmth is observable in
  ``/v1/metrics`` without contaminating batch report documents --
  served results stay byte-identical to single-shot CLI runs.

Futures are plain :class:`concurrent.futures.Future` objects resolved
by the fleet's management thread, so callers can use
:func:`concurrent.futures.wait` exactly as they would against an
executor.  Submission is thread-safe: many supervisors (one per
in-flight batch) share one fleet.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection as mp_connection
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..obs import MetricsRegistry
from ..runtime import WorkerCrash

__all__ = ["FleetStats", "WorkerFleet"]

#: Management-thread tick: bounds crash-detection and dispatch latency
#: without busy-waiting.
_TICK_S = 0.05


def _fleet_worker_main(worker_id: int, inbox: Any, results: Any) -> None:
    """One worker process: claim, run, report, repeat until sentinel.

    Module-level state in :mod:`repro.farm.worker` (the shared-cache
    slot, the resident store handles) persists across tasks by
    construction -- that persistence *is* the fleet's warm-cache win.
    After each task the worker ships its residency-counter deltas
    alongside the result, keeping them out of the result payload.

    ``results`` is this worker's *private* pipe end, not a shared
    queue.  A queue shared by every worker serializes writers through
    one cross-process lock, and a worker that dies (chaos kill,
    ``os._exit``, OOM) in the instant between finishing its write and
    releasing that lock poisons the lock for the whole fleet -- every
    later result send blocks forever.  With one single-writer pipe per
    worker there is no lock to poison: a dying worker can at worst
    truncate its own final frame, which the parent reads as EOF on a
    channel whose worker it already knows is dead.
    """
    from .worker import enable_hot_stores, take_residency_stats

    enable_hot_stores()
    while True:
        item = inbox.get()
        if item is None:
            return
        task_id, fn, args, kwargs = item
        try:
            result: Any = fn(*args, **(kwargs or {}))
            message = ("done", worker_id, task_id, result, take_residency_stats())
        except BaseException as exc:  # noqa: BLE001 - crosses a process boundary
            message = (
                "error", worker_id, task_id,
                f"{type(exc).__name__}: {exc}", take_residency_stats(),
            )
        results.send(message)


@dataclass
class FleetStats:
    """A point-in-time snapshot of the fleet's health and warmth."""

    workers: int
    alive: int
    inflight: int
    pending: int
    tasks_done: int = 0
    tasks_failed: int = 0
    crashes: int = 0
    spawned: int = 0
    #: Worker-side residency counters (e.g. shared-cache warm hits),
    #: summed over every task the fleet has completed.
    residency: Dict[str, int] = field(default_factory=dict)


class _Worker:
    """Parent-side record of one worker process."""

    def __init__(self, process: Any, inbox: Any, results: Any) -> None:
        self.process = process
        self.inbox = inbox
        #: Parent-side read end of the worker's private result pipe.
        self.results = results
        #: The task this worker currently holds, or ``None`` when idle.
        self.task_id: Optional[str] = None


class _Task:
    """One submitted unit: the call, its future, and its claim state."""

    def __init__(
        self,
        task_id: str,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Optional[Dict[str, Any]],
        stream: str,
    ) -> None:
        self.task_id = task_id
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.stream = stream
        self.future: Future = Future()
        self.worker_id: Optional[int] = None
        #: Monotonic time the task was handed to its worker; ``None``
        #: while still queued (the hang watchdog keys off this, so
        #: fleet queue wait never counts against a hang allowance).
        self.claimed_at: Optional[float] = None


class WorkerFleet:
    """A long-lived pool of worker processes shared across batches."""

    def __init__(
        self,
        workers: int,
        metrics: Optional[MetricsRegistry] = None,
        mp_context: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.size = workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Spawn, never fork: workers are (re)spawned from threads -- the
        # serving layer's runner threads, the crash collector -- and a
        # fork there can inherit a held lock (queue feeder, logging) and
        # deadlock the child.  Spawn cost is paid once per worker
        # lifetime, which is the whole point of a persistent fleet.
        self._ctx = (
            mp_context
            if mp_context is not None
            else multiprocessing.get_context("spawn")
        )
        self._lock = threading.Lock()
        self._tasks: Dict[str, _Task] = {}
        #: Per-stream FIFO of queued task ids; claims rotate over
        #: streams round-robin.
        self._pending: Dict[str, Deque[str]] = {}
        self._stream_order: List[str] = []
        self._stream_cursor = 0
        #: Per-stream claim cap (``None`` = unbounded) and live claims.
        self._stream_caps: Dict[str, Optional[int]] = {}
        self._stream_claims: Dict[str, int] = {}
        self._workers: Dict[int, _Worker] = {}
        self._worker_serial = itertools.count(1)
        self._task_serial = itertools.count(1)
        self._closed = threading.Event()
        self._tasks_done = 0
        self._tasks_failed = 0
        self._crashes = 0
        self._spawned = 0
        self._residency: Dict[str, int] = {}
        with self._lock:
            for _ in range(workers):
                self._spawn_locked()
        self._thread = threading.Thread(
            target=self._run, name="repro-farm-fleet", daemon=True
        )
        self._thread.start()

    # -- public API -----------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        stream: Optional[str] = None,
        stream_cap: Optional[int] = None,
        **kwargs: Any,
    ) -> Future:
        """Queue one call; the first idle worker claims it.

        ``stream`` groups tasks for round-robin fairness (tasks with no
        stream share one default lane); ``stream_cap`` bounds how many
        workers the stream may hold at once, so a batch can queue every
        family up front without monopolizing the fleet.  Returns a
        :class:`concurrent.futures.Future` resolving to the call's
        return value, or raising :class:`WorkerCrash` if the claiming
        worker dies under it.
        """
        if self._closed.is_set():
            raise RuntimeError("fleet is closed")
        lane = stream if stream is not None else ""
        with self._lock:
            task = _Task(
                f"task-{next(self._task_serial):06d}", fn, args,
                kwargs or None, lane,
            )
            self._tasks[task.task_id] = task
            if lane not in self._pending:
                self._pending[lane] = deque()
                self._stream_order.append(lane)
            self._pending[lane].append(task.task_id)
            if stream_cap is not None:
                self._stream_caps[lane] = max(1, stream_cap)
            self._assign_locked()
        return task.future

    def started_at(self, future: Future) -> Optional[float]:
        """Monotonic claim time of ``future``'s task (``None`` while
        queued or once the task has left the table)."""
        with self._lock:
            for task in self._tasks.values():
                if task.future is future:
                    return task.claimed_at
        return None

    def kill_task(self, future: Future) -> bool:
        """Terminate the worker holding ``future``'s task (watchdog).

        The dead worker is replaced on the next management tick; only
        the targeted task fails.  Returns whether a worker was killed
        (``False`` when the task already finished or never started).
        """
        with self._lock:
            for task_id, task in list(self._tasks.items()):
                if task.future is not future:
                    continue
                if task.worker_id is None:
                    # Not claimed yet: cancel it in place so no worker
                    # ever picks it up.
                    del self._tasks[task_id]
                    lane = self._pending.get(task.stream)
                    if lane is not None:
                        try:
                            lane.remove(task_id)
                        except ValueError:
                            pass
                    task.future.cancel()
                    return False
                worker = self._workers.get(task.worker_id)
                if worker is not None and worker.process.is_alive():
                    try:
                        worker.process.terminate()
                    except Exception:
                        return False
                    return True
        return False

    def stats(self) -> FleetStats:
        with self._lock:
            return FleetStats(
                workers=self.size,
                alive=sum(
                    1 for w in self._workers.values() if w.process.is_alive()
                ),
                inflight=sum(
                    1 for w in self._workers.values() if w.task_id is not None
                ),
                pending=sum(len(lane) for lane in self._pending.values()),
                tasks_done=self._tasks_done,
                tasks_failed=self._tasks_failed,
                crashes=self._crashes,
                spawned=self._spawned,
                residency=dict(self._residency),
            )

    def observe_gauges(self, metrics: MetricsRegistry) -> None:
        """Publish the fleet's health as gauges (the ``/v1/metrics``
        scrape path refreshes these just before rendering)."""
        snapshot = self.stats()
        metrics.gauge("farm.fleet.workers", float(snapshot.workers))
        metrics.gauge("farm.fleet.workers_alive", float(snapshot.alive))
        metrics.gauge("farm.fleet.inflight", float(snapshot.inflight))
        metrics.gauge("farm.fleet.pending", float(snapshot.pending))
        metrics.gauge("farm.fleet.tasks_done", float(snapshot.tasks_done))
        metrics.gauge("farm.fleet.crashes", float(snapshot.crashes))
        metrics.gauge("farm.fleet.spawned", float(snapshot.spawned))
        for name, value in sorted(snapshot.residency.items()):
            metrics.gauge(f"farm.fleet.{name}", float(value))

    def close(self, timeout: float = 5.0) -> None:
        """Stop the fleet: fail outstanding futures, reap the workers."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._thread.join(timeout)
        with self._lock:
            for task in list(self._tasks.values()):
                if not task.future.done():
                    task.future.set_exception(RuntimeError("fleet closed"))
            self._tasks.clear()
            self._pending.clear()
            self._stream_order.clear()
            self._stream_caps.clear()
            self._stream_claims.clear()
            for worker in self._workers.values():
                try:
                    worker.inbox.put(None)
                except Exception:
                    pass
            for worker in self._workers.values():
                worker.process.join(timeout=timeout)
                if worker.process.is_alive():
                    try:
                        worker.process.terminate()
                    except Exception:
                        pass
                try:
                    worker.results.close()
                except OSError:
                    pass
            self._workers.clear()

    def __enter__(self) -> "WorkerFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- management thread ----------------------------------------------

    def _spawn_locked(self) -> None:
        worker_id = next(self._worker_serial)
        inbox = self._ctx.Queue()
        # One single-writer result pipe per worker (see
        # :func:`_fleet_worker_main` for why this is not a shared
        # queue).  The write end is duplicated into the child at
        # ``start()``; closing the parent's copy right after means a
        # clean worker exit shows up as EOF on the read end.
        results_r, results_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(worker_id, inbox, results_w),
            name=f"repro-fleet-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        results_w.close()
        self._workers[worker_id] = _Worker(process, inbox, results_r)
        self._spawned += 1
        self.metrics.count("farm.fleet.spawn")

    def _next_task_locked(self) -> Optional[_Task]:
        """The next claimable task, round-robin over streams.

        Streams at their claim cap are skipped (their tasks stay
        queued); exhausted streams are retired from the rotation.
        Returns ``None`` when nothing is claimable right now.
        """
        skipped = 0
        while self._stream_order and skipped < len(self._stream_order):
            if self._stream_cursor >= len(self._stream_order):
                self._stream_cursor = 0
            lane = self._stream_order[self._stream_cursor]
            queued = self._pending.get(lane)
            if not queued:
                # Retire the empty stream (and its cap bookkeeping,
                # once no claims are outstanding).
                del self._stream_order[self._stream_cursor]
                self._pending.pop(lane, None)
                if self._stream_claims.get(lane, 0) <= 0:
                    self._stream_caps.pop(lane, None)
                    self._stream_claims.pop(lane, None)
                skipped = 0
                continue
            cap = self._stream_caps.get(lane)
            if cap is not None and self._stream_claims.get(lane, 0) >= cap:
                self._stream_cursor += 1
                skipped += 1
                continue
            task: Optional[_Task] = None
            while queued:
                task_id = queued.popleft()
                candidate = self._tasks.get(task_id)
                if candidate is None or candidate.future.done():
                    self._tasks.pop(task_id, None)
                    continue
                task = candidate
                break
            if task is None:
                continue  # only cancelled entries; retires next pass
            self._stream_cursor += 1
            return task
        return None

    def _assign_locked(self) -> None:
        """Hand pending tasks to idle workers (the claim step)."""
        for worker_id, worker in self._workers.items():
            if worker.task_id is not None or not worker.process.is_alive():
                continue
            task = self._next_task_locked()
            if task is None:
                return
            task.worker_id = worker_id
            task.claimed_at = time.monotonic()
            worker.task_id = task.task_id
            self._stream_claims[task.stream] = (
                self._stream_claims.get(task.stream, 0) + 1
            )
            worker.inbox.put((task.task_id, task.fn, task.args, task.kwargs))

    def _release_claim_locked(self, task: _Task) -> None:
        lane = task.stream
        remaining = self._stream_claims.get(lane, 0) - 1
        if remaining > 0:
            self._stream_claims[lane] = remaining
        elif lane not in self._pending:
            self._stream_claims.pop(lane, None)
            self._stream_caps.pop(lane, None)
        else:
            self._stream_claims[lane] = 0

    def _resolve_locked(self, message: Tuple[Any, ...]) -> None:
        kind, worker_id, task_id, payload, residency = message
        worker = self._workers.get(worker_id)
        if worker is not None and worker.task_id == task_id:
            worker.task_id = None
        task = self._tasks.pop(task_id, None)
        if task is not None and task.worker_id is not None:
            self._release_claim_locked(task)
        for name, value in (residency or {}).items():
            self._residency[name] = self._residency.get(name, 0) + int(value)
        if task is None or task.future.done():
            return
        if kind == "done":
            self._tasks_done += 1
            self.metrics.count("farm.fleet.tasks_done")
            task.future.set_result(payload)
        else:
            self._tasks_failed += 1
            self.metrics.count("farm.fleet.tasks_failed")
            task.future.set_exception(WorkerCrash(str(payload)))

    def _reap_locked(self) -> None:
        """Replace dead workers; fail only the tasks they were holding."""
        dead = [
            (worker_id, worker)
            for worker_id, worker in self._workers.items()
            if not worker.process.is_alive()
        ]
        for worker_id, worker in dead:
            # A worker that died *after* completing its task may have
            # left a full result frame in its pipe; drain it first so
            # finished work resolves instead of being retried as a
            # crash.  A truncated final frame raises and falls through
            # to the crash path.
            try:
                while worker.results.poll(0):
                    self._resolve_locked(worker.results.recv())
            except (EOFError, OSError):
                pass
            del self._workers[worker_id]
            try:
                worker.results.close()
            except OSError:
                pass
            self._crashes += 1
            self.metrics.count("farm.fleet.crash")
            if worker.task_id is not None:
                task = self._tasks.pop(worker.task_id, None)
                if task is not None:
                    self._release_claim_locked(task)
                if task is not None and not task.future.done():
                    self._tasks_failed += 1
                    exitcode = worker.process.exitcode
                    task.future.set_exception(
                        WorkerCrash(
                            f"fleet worker died (exit {exitcode}) "
                            f"while running {worker.task_id}"
                        )
                    )
            self._spawn_locked()

    def _run(self) -> None:
        while not self._closed.is_set():
            with self._lock:
                conns = [w.results for w in self._workers.values()]
            if conns:
                try:
                    ready = mp_connection.wait(conns, timeout=_TICK_S)
                except OSError:
                    ready = []
            else:
                time.sleep(_TICK_S)
                ready = []
            messages: List[Tuple[Any, ...]] = []
            for conn in ready:
                # EOF / a truncated frame means the worker died; the
                # reap below notices via process liveness and fails
                # only that worker's claimed task.
                try:
                    messages.append(conn.recv())
                except (EOFError, OSError):
                    pass
            with self._lock:
                for message in messages:
                    self._resolve_locked(message)
                self._reap_locked()
                self._assign_locked()
