"""The fault-tolerant batch supervisor: treat worker death as routine.

:func:`repro.farm.pool.run_batch` is the minimal path -- one shot per
job, no babysitting.  This module wraps the same workers in a
:class:`Supervisor` whose contract is the ROADMAP's serving-layer
prerequisite: *a batch completes, and reports every job exactly once,
no matter what the processes under it do.*  The per-job state machine::

      dispatch ──────────► running ──────────► settled (EXACT / CACHED /
         ▲                   │                          DEGRADED / FAILED
         │                   │ worker crash,            / permanent ERROR)
         │                   │ hang past --hang-timeout,
         │                   │ transient ERROR
         │                   ▼
         │ backoff      failed attempt
         └──────────────── retry? ── attempts exhausted ──► QUARANTINED
                                                            (ledger entry)

* **Watchdog** -- jobs are dispatched with ``as_completed`` semantics
  and a per-job wall clock.  An attempt running past ``hang_timeout``
  is declared hung: its worker pool is abandoned (processes
  terminated), innocent in-flight siblings are re-dispatched to a
  fresh pool *without* consuming one of their attempts, and the hung
  job's attempt counts as a transient failure.
* **Retry** -- transient failures (worker killed, broken pool,
  injected chaos faults, I/O hiccups; see
  :func:`repro.runtime.error_kind`) are retried with capped
  exponential backoff plus deterministic jitter derived from the job
  id, so schedules are reproducible.  Permanent failures -- an
  unsatisfiable question, an exhausted budget, a symbolization error
  -- fail fast: re-asking cannot change the answer.
* **Quarantine** -- a job that fails ``max_retries + 1`` attempts is
  quarantined: the batch completes without it, the report carries a
  ``QUARANTINED`` row with the attempt count, and the full error
  chain is appended to the ``quarantine.json`` ledger in the artifact
  store.  ``max_quarantine`` bounds how much of a batch may be lost
  before the run aborts loudly.
* **Resume** -- every settled job is journaled to an append-only,
  fsync'd run journal keyed by a batch signature (config, spec, jobs,
  options, limits).  A SIGKILL'd batch re-run with ``resume=True``
  replays the journal and re-dispatches only unfinished jobs; replayed
  results are byte-identical to what the killed run computed, and a
  torn final line (the crash landed mid-write) is ignored.

Duplicate execution is safe by construction: workers only write
content-addressed artifacts atomically, so an abandoned attempt that
limps to completion in a dying pool changes nothing the re-dispatched
attempt would not also write.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional

from ..bgp.config import NetworkConfig
from ..bgp.render import render_network
from ..obs import MetricsRegistry
from ..runtime import ChaosPlan, ReproError, TRANSIENT, split_budget
from ..spec.ast import Specification
from ..spec.printer import format_specification
from .fleet import WorkerFleet
from .job import ExplainJob, group_families
from .keys import FarmOptions, canonical_json, digest
from .pool import BatchReport, _merge_metrics
from .store import ArtifactStore
from .report import OK_STATUSES
from .worker import (
    JobResult,
    STATUS_ERROR,
    STATUS_QUARANTINED,
    run_family,
    shared_batch_key,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "RunJournal",
    "SupervisePolicy",
    "Supervisor",
    "backoff_delay",
    "batch_signature",
    "run_supervised",
]

JOURNAL_SCHEMA = "repro-farm-journal/2"

#: Group-commit window for journal fsync: records are written and
#: flushed per settled job (process-crash safe either way), but pay an
#: fsync -- the machine-failure guard -- at most this often.
_JOURNAL_SYNC_S = 0.5

#: How long the dispatch loop waits on in-flight futures per iteration;
#: bounds watchdog latency without busy-waiting.
_TICK_S = 0.05

#: Process-wide source of unique fleet stream names (one per batch).
_STREAM_SERIAL = itertools.count(1)


@dataclass(frozen=True)
class SupervisePolicy:
    """The supervisor's knobs (the CLI's ``--retries`` family)."""

    #: Retries *beyond* the first attempt; a job consumes at most
    #: ``max_retries + 1`` attempts before quarantine.
    max_retries: int = 2
    #: First backoff delay in seconds; attempt N waits
    #: ``base * 2**(N-1)`` (jittered, capped).  Zero disables sleeping.
    backoff_base: float = 0.1
    #: Upper bound on any single backoff delay.
    backoff_cap: float = 5.0
    #: Wall-clock seconds an attempt may run before the watchdog
    #: declares it hung; ``None`` disables the watchdog.
    hang_timeout: Optional[float] = None
    #: Abort the batch once more than this many jobs are quarantined;
    #: ``None`` never aborts.
    max_quarantine: Optional[int] = None
    #: Replay the run journal and skip already-settled jobs.
    resume: bool = False
    #: Deterministic process-level fault injection (tests / chaos CI).
    chaos: Optional[ChaosPlan] = None


def backoff_delay(
    base: float, cap: float, job_id: str, attempt: int
) -> float:
    """Capped exponential backoff with deterministic jitter.

    The jitter factor (0..25% extra) is derived from a hash of the job
    id and attempt number, so concurrent retries de-synchronize without
    making any schedule random: the same batch replays identically.
    """
    if base <= 0:
        return 0.0
    seed = hashlib.sha256(f"{job_id}:{attempt}".encode("utf-8")).hexdigest()
    jitter = int(seed[:8], 16) / 0xFFFFFFFF
    return min(cap, base * (2 ** (attempt - 1)) * (1.0 + 0.25 * jitter))


def batch_signature(
    config: NetworkConfig,
    specification: Specification,
    jobs: List[ExplainJob],
    options: FarmOptions,
    timeout: Optional[float] = None,
    budget: Optional[int] = None,
) -> str:
    """The identity of a batch for journaling purposes.

    Everything that pins the batch's *answers* participates -- config,
    specification, job list, engine options and the governed limits --
    so a resumed run can only ever be completed with results the
    crashed run would itself have produced.  The audit knobs join only
    when auditing is on: an audited batch must not resume from (or be
    resumed by) an unaudited journal, while non-audit signatures stay
    byte-identical to what they were before the audit stage existed.
    """
    payload = {
        "schema": JOURNAL_SCHEMA,
        "config": render_network(config),
        "spec": format_specification(specification),
        "managed": sorted(specification.managed),
        "jobs": [job.payload() for job in jobs],
        "options": options.payload(),
        "timeout": timeout,
        "budget": budget,
    }
    if options.audit:
        payload["audit"] = options.audit_payload()
    return digest(payload)


# ---------------------------------------------------------------------------
# The crash-safe run journal


def _result_payload(result: JobResult) -> Dict[str, object]:
    """The journaled form of a settled job (metrics excluded).

    Durable answers -- EXACT results the worker just persisted and
    CACHED results that came from the store -- are journaled as a
    reference (``"stored": true``, no inline explanation): the
    artifact store already holds the payload content-addressed by the
    job key, and re-encoding every explanation into the journal once
    per settled job dominated journal cost.  Replay loads the payload
    back from the store; a missing or corrupt artifact simply re-runs
    the job, exactly like a lost journal window.
    """
    stored = (
        result.explanation is not None
        and result.key is not None
        and result.status in OK_STATUSES
    )
    payload = {
        "job": result.job.payload(),
        "key": result.key,
        "status": result.status,
        "cached": result.cached,
        "duration_s": result.duration_s,
        "subspec": result.subspec,
        "error": result.error,
        "error_kind": result.error_kind,
        "attempts": result.attempts,
        "quarantined": result.quarantined,
        "stored": stored,
        "explanation": None if stored else result.explanation,
    }
    # Audit verdicts are small and journaled inline (only when present,
    # so non-audit journal bytes are untouched); replay restores them
    # without re-running the suite.
    if result.audit is not None:
        payload["audit"] = result.audit
    return payload


def _result_from_payload(
    payload: Dict[str, object], store: Optional[ArtifactStore]
) -> Optional[JobResult]:
    """Rebuild one journaled result (``None`` when unrecoverable).

    A ``"stored": true`` record carries no inline explanation; the
    payload is reloaded from the artifact store by job key.  A missing
    store or evicted artifact yields ``None`` -- the caller treats the
    job as never settled and re-runs it.
    """
    explanation = payload.get("explanation")
    key = payload.get("key")
    if payload.get("stored"):
        if store is None or not isinstance(key, str):
            return None
        explanation = store.load(key, "explanation")
        if explanation is None:
            return None
    job_fields = dict(payload["job"])  # type: ignore[arg-type]
    job_fields["fields"] = tuple(job_fields.get("fields") or ())
    return JobResult(
        job=ExplainJob(**job_fields),
        key=key,  # type: ignore[arg-type]
        status=str(payload["status"]),
        cached=bool(payload.get("cached")),
        duration_s=float(payload.get("duration_s") or 0.0),
        subspec=str(payload.get("subspec") or ""),
        error=payload.get("error"),  # type: ignore[arg-type]
        error_kind=payload.get("error_kind"),  # type: ignore[arg-type]
        attempts=int(payload.get("attempts") or 1),
        quarantined=bool(payload.get("quarantined")),
        explanation=explanation,  # type: ignore[arg-type]
        audit=payload.get("audit"),  # type: ignore[arg-type]
    )


class RunJournal:
    """An append-only record of settled jobs.

    Layout: ``<cache_dir>/journal/<signature>.jsonl`` -- a header line
    naming the schema and batch signature, then one line per settled
    job.  Each line is flushed before the supervisor moves on (fsync
    is group-committed, see :meth:`_write`), so after SIGKILL the
    journal is a valid prefix of the run plus at most one torn line,
    which replay ignores.
    """

    def __init__(self, cache_dir: str, signature: str) -> None:
        self.signature = signature
        self.path = os.path.join(cache_dir, "journal", f"{signature}.jsonl")
        self._handle = None
        self._last_sync = 0.0

    # -- replay ---------------------------------------------------------

    def replay(
        self, store: Optional[ArtifactStore] = None
    ) -> Dict[str, JobResult]:
        """job id -> settled result from a prior (possibly killed) run.

        An absent journal, a schema/signature mismatch, or a corrupt
        header all replay to "nothing done"; a torn or garbled line
        ends the replay at the last intact record.  ``store`` resolves
        ``"stored": true`` records (durable answers journaled by
        reference); a record whose artifact is gone is skipped, which
        re-runs that job.
        """
        try:
            with open(self.path, "r", encoding="ascii") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return {}
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except ValueError:
            return {}
        if (
            not isinstance(header, dict)
            or header.get("schema") != JOURNAL_SCHEMA
            or header.get("batch") != self.signature
        ):
            return {}
        results: Dict[str, JobResult] = {}
        for line in lines[1:]:
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "done" not in record:
                    break
                result = _result_from_payload(record["done"], store)
            except (ValueError, KeyError, TypeError):
                break  # torn tail: the crash landed mid-write
            if result is not None:
                results[result.job.job_id] = result
        return results

    # -- writing --------------------------------------------------------

    def start(self, fresh: bool) -> None:
        """Open for appending; ``fresh`` truncates and re-headers."""
        try:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            exists = os.path.exists(self.path) and not fresh
            if exists:
                self._trim_torn_tail()
            self._handle = open(
                self.path, "a" if exists else "w", encoding="ascii"
            )
            if not exists:
                self._write(
                    {"schema": JOURNAL_SCHEMA, "batch": self.signature}
                )
        except OSError:
            self._handle = None  # unwritable cache: run without a journal

    def _trim_torn_tail(self) -> None:
        """Cut the journal back to its last intact line.

        Appending after a crash must not glue the first new record onto
        the torn line the crash left behind -- that would garble a
        *settled* record, not just the tail.
        """
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return
        good = 0
        for line in raw.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break
            try:
                json.loads(line.decode("ascii"))
            except (ValueError, UnicodeDecodeError):
                break
            good += len(line)
        if good < len(raw):
            try:
                with open(self.path, "r+b") as handle:
                    handle.truncate(good)
            except OSError:
                pass

    def record(self, result: JobResult) -> None:
        self._write({"done": _result_payload(result)})

    def _write(self, record: Dict[str, object]) -> None:
        """Append one record: write-through, group-committed fsync.

        Every record is written and flushed immediately, so a crash of
        *this process* loses nothing (the data is in the page cache).
        ``fsync`` -- which only guards against kernel or power failure
        -- is group-committed to at most one per
        :data:`_JOURNAL_SYNC_S`, instead of once per settled job; the
        worst case is a machine-level failure forgetting the last
        window of settled jobs, which ``resume`` simply re-runs.
        """
        if self._handle is None:
            return
        try:
            self._handle.write(canonical_json(record) + "\n")
            self._handle.flush()
            now = time.monotonic()
            if now - self._last_sync >= _JOURNAL_SYNC_S:
                os.fsync(self._handle.fileno())
                self._last_sync = now
        except (OSError, ValueError):
            self._handle = None

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


# ---------------------------------------------------------------------------
# The supervisor


@dataclass
class _Attempt:
    """One dispatch of one job."""

    index: int
    job: ExplainJob
    attempt: int = 1
    #: Monotonic time before which the attempt must not be dispatched
    #: (backoff); 0.0 dispatches immediately.
    ready_at: float = 0.0
    #: Monotonic dispatch time of the running attempt (watchdog clock).
    started: float = field(default=0.0, compare=False)


#: The supervisor's dispatch unit: the attempts of one job family,
#: shipped to one worker together.  First dispatch groups whole
#: families; every retry is a singleton unit (a failed member must not
#: drag its innocent siblings through another attempt).
_Unit = List[_Attempt]


class Supervisor:
    """Run one batch to completion despite worker death and hangs."""

    def __init__(
        self,
        config: NetworkConfig,
        specification: Specification,
        jobs: List[ExplainJob],
        options: Optional[FarmOptions] = None,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        budget: Optional[int] = None,
        scenario: str = "batch",
        policy: Optional[SupervisePolicy] = None,
        share: bool = True,
        progress: Optional[Callable[[JobResult], None]] = None,
        stop: Optional[threading.Event] = None,
        fleet: Optional[WorkerFleet] = None,
    ) -> None:
        self.config = config
        self.specification = specification
        self.jobs = list(jobs)
        self.options = options if options is not None else FarmOptions()
        self.cache_dir = cache_dir
        self.workers = max(1, workers)
        self.timeout = timeout
        self.budget = budget
        self.scenario = scenario
        self.policy = policy if policy is not None else SupervisePolicy()
        self.share = share
        #: Long-lived-process seams (the serving layer): ``progress``
        #: is called in the supervisor's thread after each job settles
        #: (journaled result in hand); ``stop`` set mid-run drains the
        #: batch -- in-flight families finish and are journaled,
        #: everything still waiting is left unsettled for ``--resume``.
        self.progress = progress
        self.stop = stop
        #: A long-lived :class:`WorkerFleet` to borrow workers from
        #: instead of building a per-batch pool.  All ready units are
        #: queued fleet-side at once on this batch's stream; ``workers``
        #: caps the stream's simultaneous worker claims, so one request
        #: cannot monopolize a fleet shared with other batches.
        self.fleet = fleet
        self._stream = f"batch-{next(_STREAM_SERIAL)}"
        #: Identity of the batch's worker-side shared caches; ``None``
        #: disables sharing (explicitly, or because the run is
        #: governed -- see :func:`repro.farm.worker.run_family`).
        self._shared_key = (
            shared_batch_key(config, specification, self.options)
            if share and timeout is None and budget is None
            else None
        )
        if (
            self.workers <= 1
            and fleet is None
            and self.policy.chaos is not None
            and self.policy.chaos.needs_process_isolation
        ):
            raise ValueError(
                "chaos kill/hang events need a process pool (workers >= 2) "
                "or a worker fleet"
            )
        self.metrics = MetricsRegistry()
        #: job id -> per-attempt error chain (for the quarantine ledger).
        self.errors: Dict[str, List[Dict[str, object]]] = {}

    # -- public entry ---------------------------------------------------

    def run(self) -> BatchReport:
        started = time.perf_counter()
        shares = split_budget(self.budget, len(self.jobs)) if self.jobs else None
        store = (
            ArtifactStore(self.cache_dir) if self.cache_dir is not None else None
        )
        results: Dict[int, JobResult] = {}
        journal: Optional[RunJournal] = None
        if self.cache_dir is not None:
            signature = batch_signature(
                self.config, self.specification, self.jobs, self.options,
                timeout=self.timeout, budget=self.budget,
            )
            journal = RunJournal(self.cache_dir, signature)
            if self.policy.resume:
                replayed = journal.replay(store)
                for index, job in enumerate(self.jobs):
                    done = replayed.get(job.job_id)
                    if done is not None:
                        results[index] = done
                        self.metrics.count("farm.supervise.resumed")
            journal.start(fresh=not results)
        pending = self._units(results)
        try:
            if self.fleet is not None:
                self._run_fleet(pending, shares, results, journal, store)
            elif self.workers <= 1:
                self._run_serial(pending, shares, results, journal, store)
            else:
                self._run_pool(pending, shares, results, journal, store)
        finally:
            if journal is not None:
                journal.close()
        report = BatchReport(
            scenario=self.scenario,
            results=[results[index] for index in sorted(results)],
            workers=self.workers,
            wall_s=time.perf_counter() - started,
        )
        _merge_metrics(report)
        report.metrics.merge(self.metrics)
        return report

    # -- shared settle/fail machinery -----------------------------------

    def _units(self, results: Dict[int, JobResult]) -> List[_Unit]:
        """Group unsettled jobs into first-dispatch units.

        Family grouping mirrors :func:`repro.farm.pool.run_batch`:
        whole families with ``share``, singletons without.  Jobs
        already settled (journal replay) are dropped from their unit --
        a resumed family re-dispatches only its unfinished members.
        """
        attempts = {
            index: _Attempt(index=index, job=job)
            for index, job in enumerate(self.jobs)
            if index not in results
        }
        if not self.share:
            return [[attempts[index]] for index in sorted(attempts)]
        from .pool import _member_indices

        families = group_families(self.jobs)
        members = _member_indices(self.jobs, families)
        units: List[_Unit] = []
        for family in families:
            unit = [
                attempts[index]
                for index in members[family.index]
                if index in attempts
            ]
            if unit:
                units.append(unit)
        return units

    def _share(self, shares, index: int) -> Optional[int]:
        return shares[index] if shares is not None else None

    def _settle(
        self,
        att: _Attempt,
        result: JobResult,
        now: float,
        requeue,
        results: Dict[int, JobResult],
        journal: Optional[RunJournal],
        store: Optional[ArtifactStore],
    ) -> None:
        """Fold one finished attempt into the batch state."""
        if result.status == STATUS_ERROR and result.error_kind == TRANSIENT:
            self._fail(
                att, result.error or "transient failure", now, requeue,
                results, journal, store, key=result.key,
            )
            return
        result.attempts = att.attempt
        results[att.index] = result
        if journal is not None:
            journal.record(result)
        if self.progress is not None:
            self.progress(result)

    def _fail(
        self,
        att: _Attempt,
        error_text: str,
        now: float,
        requeue,
        results: Dict[int, JobResult],
        journal: Optional[RunJournal],
        store: Optional[ArtifactStore],
        key: Optional[str] = None,
    ) -> None:
        """One transient failure: schedule a retry or quarantine."""
        chain = self.errors.setdefault(att.job.job_id, [])
        chain.append(
            {"attempt": att.attempt, "error": error_text, "kind": TRANSIENT}
        )
        if att.attempt <= self.policy.max_retries:
            self.metrics.count("farm.supervise.retry")
            delay = backoff_delay(
                self.policy.backoff_base, self.policy.backoff_cap,
                att.job.job_id, att.attempt,
            )
            requeue(
                replace(att, attempt=att.attempt + 1, ready_at=now + delay)
            )
            return
        self.metrics.count("farm.supervise.quarantine")
        result = JobResult(
            job=att.job, key=key, status=STATUS_QUARANTINED, cached=False,
            duration_s=0.0, error=error_text, error_kind=TRANSIENT,
            attempts=att.attempt, quarantined=True,
        )
        results[att.index] = result
        if store is not None:
            store.quarantine_add(
                {
                    "job": att.job.job_id,
                    "key": key,
                    "attempts": att.attempt,
                    "errors": chain,
                }
            )
        if journal is not None:
            journal.record(result)
        if self.progress is not None:
            self.progress(result)
        quarantined = sum(1 for r in results.values() if r.quarantined)
        limit = self.policy.max_quarantine
        if limit is not None and quarantined > limit:
            raise ReproError(
                f"quarantine limit exceeded: {quarantined} jobs quarantined "
                f"(--max-quarantine {limit})"
            )

    def _stopping(self) -> bool:
        """Whether a drain was requested (serving-layer SIGTERM)."""
        return self.stop is not None and self.stop.is_set()

    def _count_drained(self, drained: int) -> None:
        if drained:
            self.metrics.count("farm.supervise.drained", drained)

    # -- serial mode ----------------------------------------------------

    def _run_serial(self, pending, shares, results, journal, store) -> None:
        """In-process loop: retries and quarantine, no watchdog.

        Without a process boundary a hang cannot be interrupted, so
        ``hang_timeout`` is inert here -- the CLI documents that the
        watchdog needs ``-j 2`` or more.
        """
        queue: Deque[_Unit] = deque(pending)

        def requeue(att: _Attempt) -> None:
            queue.append([att])

        while queue:
            if self._stopping():
                self._count_drained(sum(len(unit) for unit in queue))
                return
            unit = queue.popleft()
            now = time.monotonic()
            ready = max(att.ready_at for att in unit)
            if ready > now:
                time.sleep(ready - now)
            outcomes = run_family(
                self.config, self.specification,
                [att.job for att in unit], self.options, self.cache_dir,
                self.timeout,
                [self._share(shares, att.index) for att in unit],
                [att.attempt for att in unit],
                self.policy.chaos, self._shared_key,
            )
            now = time.monotonic()
            for att, result in zip(unit, outcomes):
                self._settle(
                    att, result, now, requeue, results, journal, store
                )

    # -- pool mode ------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _abandon_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear a (broken or hung) pool down without waiting on it.

        ``_processes`` is private executor state, but terminating the
        children is the only way to reclaim a worker stuck in a
        non-cooperative hang; the executor object itself is abandoned
        either way, so a future stdlib rearrangement degrades this to
        "leak one hung process", never to wrong results.
        """
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _dispatch(
        self, pool: ProcessPoolExecutor, unit: _Unit, shares
    ) -> Future:
        started = time.monotonic()
        for att in unit:
            att.started = started
        return pool.submit(
            run_family, self.config, self.specification,
            [att.job for att in unit], self.options, self.cache_dir,
            self.timeout,
            [self._share(shares, att.index) for att in unit],
            [att.attempt for att in unit],
            self.policy.chaos, self._shared_key,
        )

    def _run_pool(self, pending, shares, results, journal, store) -> None:
        waiting: Deque[_Unit] = deque(pending)
        backoff: List[_Attempt] = []
        inflight: Dict[Future, _Unit] = {}
        pool = self._new_pool()
        try:
            while waiting or backoff or inflight:
                if self._stopping() and (waiting or backoff):
                    # Drain: in-flight families run to completion (and
                    # are journaled below); everything not yet
                    # dispatched -- including pending retries -- is
                    # left unsettled for a later --resume.
                    self._count_drained(
                        sum(len(unit) for unit in waiting) + len(backoff)
                    )
                    waiting.clear()
                    backoff = []
                    if not inflight:
                        break
                now = time.monotonic()
                due = [att for att in backoff if att.ready_at <= now]
                if due:
                    backoff = [a for a in backoff if a.ready_at > now]
                    waiting.extend(
                        [att] for att in sorted(due, key=lambda a: a.index)
                    )
                while waiting and len(inflight) < self.workers:
                    unit = waiting.popleft()
                    inflight[self._dispatch(pool, unit, shares)] = unit
                if not inflight:
                    next_ready = min(att.ready_at for att in backoff)
                    time.sleep(max(0.0, min(next_ready - now, _TICK_S)))
                    continue
                done, _ = wait(
                    set(inflight), timeout=_TICK_S,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                rebuild = False
                for future in done:
                    unit = inflight.pop(future)
                    error = future.exception()
                    if error is None:
                        for att, result in zip(unit, future.result()):
                            self._settle(
                                att, result, now, backoff.append,
                                results, journal, store,
                            )
                    else:
                        # The worker (or the whole pool) died under the
                        # unit: transient by definition, for every
                        # member -- a family shares its process.
                        rebuild = True
                        self.metrics.count("farm.supervise.crash")
                        for att in unit:
                            self._fail(
                                att,
                                f"{type(error).__name__}: {error}",
                                now, backoff.append, results, journal,
                                store,
                            )
                if self.policy.hang_timeout is not None:
                    # A unit runs its members back to back, so its hang
                    # allowance scales with its size.
                    hung = [
                        future
                        for future, unit in inflight.items()
                        if now - unit[0].started
                        > self.policy.hang_timeout * len(unit)
                    ]
                    for future in hung:
                        unit = inflight.pop(future)
                        rebuild = True
                        self.metrics.count("farm.supervise.hang")
                        for att in unit:
                            self._fail(
                                att,
                                f"WorkerHang: no result within "
                                f"{self.policy.hang_timeout}s (watchdog)",
                                now, backoff.append, results, journal,
                                store,
                            )
                if rebuild:
                    # Innocent in-flight units go back to the front of
                    # the queue at their *current* attempt numbers: a
                    # neighbor's death must not burn their retries.
                    for unit in inflight.values():
                        waiting.append(unit)
                    inflight.clear()
                    self._abandon_pool(pool)
                    pool = self._new_pool()
                    self.metrics.count("farm.supervise.pool_rebuild")
        finally:
            if inflight:
                # Aborted mid-flight (e.g. quarantine limit): do not
                # wait on workers that may be hung or dying.
                self._abandon_pool(pool)
            else:
                pool.shutdown(wait=True)

    # -- fleet mode -----------------------------------------------------

    def _dispatch_fleet(self, unit: _Unit, shares) -> Future:
        started = time.monotonic()
        for att in unit:
            att.started = started
        assert self.fleet is not None
        return self.fleet.submit(
            run_family, self.config, self.specification,
            [att.job for att in unit], self.options, self.cache_dir,
            self.timeout,
            [self._share(shares, att.index) for att in unit],
            [att.attempt for att in unit],
            self.policy.chaos, self._shared_key,
            stream=self._stream, stream_cap=max(1, self.workers),
        )

    def _run_fleet(self, pending, shares, results, journal, store) -> None:
        """Dispatch onto the shared :class:`WorkerFleet`.

        Same retry/quarantine/watchdog/journal semantics as
        :meth:`_run_pool`, with three structural differences:

        * A worker crash fails only the unit that worker held -- the
          fleet replaces the process itself, and other units (this
          batch's or another's) keep their workers.  No pool rebuild,
          no innocent re-dispatch.
        * Dispatch is *deep*: every ready unit is queued fleet-side at
          once on this batch's stream, so an idle worker claims the
          next family immediately instead of waiting for this loop to
          settle and re-dispatch.  The stream's claim cap (the
          request's ``workers``) keeps the batch from monopolizing the
          shared fleet.
        * The hang watchdog terminates just the offending worker
          (:meth:`WorkerFleet.kill_task`) instead of abandoning a
          pool.  The hang clock starts when a worker *claims* the
          unit, so fleet queue wait on a contended fleet never counts
          against the allowance.
        """
        assert self.fleet is not None
        waiting: Deque[_Unit] = deque(pending)
        backoff: List[_Attempt] = []
        inflight: Dict[Future, _Unit] = {}
        try:
            while waiting or backoff or inflight:
                if self._stopping() and (waiting or backoff):
                    self._count_drained(
                        sum(len(unit) for unit in waiting) + len(backoff)
                    )
                    waiting.clear()
                    backoff = []
                    if not inflight:
                        break
                now = time.monotonic()
                due = [att for att in backoff if att.ready_at <= now]
                if due:
                    backoff = [a for a in backoff if a.ready_at > now]
                    waiting.extend(
                        [att] for att in sorted(due, key=lambda a: a.index)
                    )
                while waiting:
                    unit = waiting.popleft()
                    inflight[self._dispatch_fleet(unit, shares)] = unit
                if not inflight:
                    next_ready = min(att.ready_at for att in backoff)
                    time.sleep(max(0.0, min(next_ready - now, _TICK_S)))
                    continue
                done, _ = wait(
                    set(inflight), timeout=_TICK_S,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future in done:
                    unit = inflight.pop(future)
                    error = future.exception()
                    if error is None:
                        for att, result in zip(unit, future.result()):
                            self._settle(
                                att, result, now, backoff.append,
                                results, journal, store,
                            )
                    else:
                        # The fleet worker died under the unit (and has
                        # already been replaced): transient for every
                        # member -- a family shares its process.
                        self.metrics.count("farm.supervise.crash")
                        for att in unit:
                            self._fail(
                                att,
                                f"{type(error).__name__}: {error}",
                                now, backoff.append, results, journal,
                                store,
                            )
                if self.policy.hang_timeout is not None:
                    hung = []
                    for future, unit in inflight.items():
                        claimed = self.fleet.started_at(future)
                        if (
                            claimed is not None
                            and now - claimed
                            > self.policy.hang_timeout * len(unit)
                        ):
                            hung.append(future)
                    for future in hung:
                        unit = inflight.pop(future)
                        self.metrics.count("farm.supervise.hang")
                        self.fleet.kill_task(future)
                        for att in unit:
                            self._fail(
                                att,
                                f"WorkerHang: no result within "
                                f"{self.policy.hang_timeout}s (watchdog)",
                                now, backoff.append, results, journal,
                                store,
                            )
        finally:
            # Aborted mid-flight (e.g. quarantine limit): the fleet
            # outlives this batch, so just disown our futures -- late
            # results resolve into futures nobody reads.
            inflight.clear()


def run_supervised(
    config: NetworkConfig,
    specification: Specification,
    jobs: List[ExplainJob],
    options: Optional[FarmOptions] = None,
    cache_dir: Optional[str] = None,
    workers: int = 1,
    timeout: Optional[float] = None,
    budget: Optional[int] = None,
    scenario: str = "batch",
    policy: Optional[SupervisePolicy] = None,
    share: bool = True,
    progress: Optional[Callable[[JobResult], None]] = None,
    stop: Optional[threading.Event] = None,
    fleet: Optional[WorkerFleet] = None,
) -> BatchReport:
    """Answer every job under supervision; see :class:`Supervisor`."""
    return Supervisor(
        config, specification, jobs, options, cache_dir, workers,
        timeout, budget, scenario, policy, share=share,
        progress=progress, stop=stop, fleet=fleet,
    ).run()
