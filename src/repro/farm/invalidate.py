"""Incremental invalidation: is a cached answer still exact?

The decision procedure mirrors ccache's two-level scheme:

1. **Static key** -- if a job's content-addressed key changed between
   the old and new configuration, the device's own inputs changed and
   the job is dirty (its cache slot moved anyway).
2. **Read-set replay** -- otherwise the stored read-set is checked
   against the *new* configuration:

   a. the attribute universe (collected on the job's sketch) must be
      unchanged -- it shapes every symbolic term;
   b. each touched seam whose route-map renders to the same text as
      recorded is clean without further work;
   c. seams whose text changed are *replayed*: every recorded input is
      pushed through the new map (symbolically or concretely, matching
      the seam it was recorded at) and the output fingerprint compared.
      Behaviour-preserving edits -- renumbering sequence numbers,
      renaming a map -- therefore keep the cache warm, while any edit
      that changes what the job observed marks it dirty.

Everything here is conservative: a missing or unparseable read-set
means dirty, never "assume clean".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bgp.announcement import Announcement
from ..bgp.config import NetworkConfig
from ..smt.serialize import SerializationError
from ..spec.ast import Specification
from ..synthesis.holes import HoleEncoder
from ..synthesis.symexec import AttributeUniverse, apply_routemap_symbolic
from .keys import FarmOptions, job_key
from .readset import (
    CONCRETE,
    READSET_SCHEMA,
    SYMBOLIC,
    concrete_output_fingerprint,
    symbolic_output_fingerprint,
    symbolic_route_from_payload,
    universe_payload,
)
from .store import ArtifactStore

__all__ = ["sketch_universe", "readset_valid", "compute_dirty"]


def sketch_universe(config: NetworkConfig, job) -> AttributeUniverse:
    """The attribute universe of ``job``'s question under ``config``.

    Collected on the *sketch* (the symbolized configuration), exactly
    as the encoder does it: hole domains feed the universe, so two
    configurations agree on a job's universe only if they agree after
    symbolization.
    """
    sketch, _ = job.symbolize(config)
    configs = [
        sketch.router_config(name) for name in sketch.topology.router_names
    ]
    return AttributeUniverse.collect(configs, sketch.topology)


def _replay_symbolic(entry: dict, routemap, universe: AttributeUniverse) -> bool:
    """Does the new map reproduce the recorded symbolic transfer?"""
    try:
        state_in = symbolic_route_from_payload(entry["input"])
    except (SerializationError, KeyError, TypeError, ValueError):
        return False
    permit, state_out = apply_routemap_symbolic(
        routemap, state_in, universe, HoleEncoder()
    )
    return symbolic_output_fingerprint(permit, state_out) == entry["output"]


def _replay_concrete(entry: dict, routemap) -> bool:
    """Does the new map reproduce the recorded concrete transfer?"""
    try:
        announcement = Announcement.from_dict(entry["input"])
    except (KeyError, TypeError, ValueError):
        return False
    result = routemap.apply(announcement) if routemap is not None else announcement
    return concrete_output_fingerprint(result) == entry["output"]


def readset_valid(
    readset: Optional[dict],
    new_config: NetworkConfig,
    new_universe: AttributeUniverse,
) -> bool:
    """Whether a stored read-set still describes ``new_config``."""
    if not isinstance(readset, dict) or readset.get("schema") != READSET_SCHEMA:
        return False
    if readset.get("universe") != universe_payload(new_universe):
        return False
    try:
        maps: List[list] = list(readset["maps"])
        entries: List[dict] = list(readset["entries"])
    except (KeyError, TypeError):
        return False

    from ..bgp.render import render_routemap

    dirty_seams = set()
    for item in maps:
        try:
            owner, direction, neighbor, recorded_text = item
        except (TypeError, ValueError):
            return False
        routemap = new_config.get_map(str(owner), str(direction), str(neighbor))
        current_text = render_routemap(routemap) if routemap is not None else None
        if current_text != recorded_text:
            dirty_seams.add((str(owner), str(direction), str(neighbor)))
    if not dirty_seams:
        return True

    for entry in entries:
        if not isinstance(entry, dict):
            return False
        seam = (
            str(entry.get("owner")),
            str(entry.get("direction")),
            str(entry.get("neighbor")),
        )
        if seam not in dirty_seams:
            continue
        routemap = new_config.get_map(*seam)
        if entry.get("seam") == SYMBOLIC:
            if not _replay_symbolic(entry, routemap, new_universe):
                return False
        elif entry.get("seam") == CONCRETE:
            if not _replay_concrete(entry, routemap):
                return False
        else:
            return False
    return True


def compute_dirty(
    old_config: NetworkConfig,
    new_config: NetworkConfig,
    specification: Specification,
    jobs,
    options: FarmOptions,
    store: ArtifactStore,
) -> Tuple[list, Dict[object, str]]:
    """Partition ``jobs`` into the dirty set and the provably-clean map.

    Returns ``(dirty_jobs, clean_keys)`` where ``clean_keys`` maps each
    clean job to its (unchanged) content-addressed key, under which the
    store holds an answer that is exact for ``new_config``.
    """
    dirty = []
    clean: Dict[object, str] = {}
    for job in jobs:
        new_key = job_key(new_config, specification, job, options)
        try:
            old_key = job_key(old_config, specification, job, options)
        except Exception:
            # The question does not even exist under the old config
            # (new line, new session): necessarily dirty.
            old_key = None
        if new_key != old_key:
            dirty.append(job)
            continue
        readset = store.load(new_key, "readset")
        if readset is None or store.load(new_key, "explanation") is None:
            dirty.append(job)
            continue
        universe = sketch_universe(new_config, job)
        if readset_valid(readset, new_config, universe):
            clean[job] = new_key
        else:
            dirty.append(job)
    return dirty, clean
