"""Resource-governed execution: deadlines, budgets, cancellation, faults.

This package sits *below* every other layer (it imports nothing from
the rest of the repository) and provides the machinery that keeps hard
instances from hanging an explanation run:

* :class:`Deadline` -- wall-clock limits on a monotonic clock,
* :class:`WorkBudget` -- named work counters (SAT conflicts, rewrite
  steps, enumerated models, candidates, simulation rounds, ...),
* :class:`CancelToken` -- cooperative cancellation,
* :class:`Governor` -- the composable bundle the hot loops checkpoint,
* :class:`FaultPlan` -- deterministic fault injection for tests,
* the structured exception taxonomy rooted at :class:`ReproError`.

See ``docs/robustness.md`` for the degradation contract each pipeline
stage honours when a governed limit fires.
"""

from .errors import (
    Cancelled,
    DeadlineExceeded,
    EnumerationTruncated,
    GOVERNED_ERRORS,
    PERMANENT,
    ReproError,
    ResourceExhausted,
    TRANSIENT,
    TransientError,
    WorkerCrash,
    error_kind,
    is_transient,
)
from .faults import (
    CHAOS_CORRUPT,
    CHAOS_FLAKY,
    CHAOS_HANG,
    CHAOS_KILL,
    ChaosEvent,
    ChaosPlan,
    FaultPlan,
    FaultSpec,
)
from .governor import CancelToken, Deadline, Governor, WorkBudget, split_budget

__all__ = [
    "ReproError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "Cancelled",
    "EnumerationTruncated",
    "TransientError",
    "WorkerCrash",
    "GOVERNED_ERRORS",
    "TRANSIENT",
    "PERMANENT",
    "error_kind",
    "is_transient",
    "Deadline",
    "WorkBudget",
    "CancelToken",
    "Governor",
    "split_budget",
    "FaultPlan",
    "FaultSpec",
    "ChaosPlan",
    "ChaosEvent",
    "CHAOS_KILL",
    "CHAOS_HANG",
    "CHAOS_FLAKY",
    "CHAOS_CORRUPT",
]
