"""The structured exception taxonomy for resource-governed execution.

Every error the pipeline raises deliberately derives from
:class:`ReproError`, so callers (the explanation engine, the CLI) can
distinguish *governed* outcomes -- a deadline fired, a work budget ran
out, the user cancelled -- from genuine internal errors, and map each
to a graceful degradation or a distinct exit code.

The taxonomy::

    ReproError
    ├── ResourceExhausted          a work budget ran out
    │   └── DeadlineExceeded       the wall-clock deadline passed
    ├── Cancelled                  cooperative cancellation was requested
    ├── EnumerationTruncated       a model enumeration hit its limit
    │                              with models still remaining
    └── TransientError             an infrastructure fault that may pass
        └── WorkerCrash            a worker process died mid-job

``EnumerationTruncated`` carries the partial count so callers can still
use the lower bound.  ``GOVERNED_ERRORS`` is the tuple to catch when a
caller wants to degrade gracefully on any governed interruption.

Transient vs. permanent
-----------------------
The batch supervisor (:mod:`repro.farm.supervise`) retries failures it
has reason to believe will not recur -- a worker process killed by the
OS, a broken process pool, an I/O hiccup, an injected chaos fault --
and fails fast on failures that are properties of the *question* (an
unsatisfiable instance, an exhausted budget, a symbolization error):
re-asking those can only waste the batch's time.  :func:`error_kind`
encodes that policy in one place; both the worker and the supervisor
consult it so a failure is classified identically on both sides of the
process boundary.
"""

from __future__ import annotations

from typing import Optional, Union

__all__ = [
    "ReproError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "Cancelled",
    "EnumerationTruncated",
    "TransientError",
    "WorkerCrash",
    "GOVERNED_ERRORS",
    "TRANSIENT",
    "PERMANENT",
    "error_kind",
    "is_transient",
]


class ReproError(Exception):
    """Base class for all structured errors raised by this package."""


class ResourceExhausted(ReproError):
    """A work budget (conflicts, rewrite steps, models, ...) ran out.

    Attributes
    ----------
    stage:
        The pipeline stage whose checkpoint detected exhaustion
        (``"sat"``, ``"rewrite"``, ``"enumerate"``, ``"encode"``,
        ``"lift"``, ``"project"``, ``"simulate"``), when known.
    kind:
        The budget counter that ran out (``"conflicts"``,
        ``"rewrite_steps"``, ``"models"``, ``"candidates"``,
        ``"rounds"``, ``"assignments"``, ``"total"``), when known.
    """

    def __init__(
        self,
        message: str,
        stage: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.kind = kind


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed (time is a resource too)."""

    def __init__(self, message: str, stage: Optional[str] = None) -> None:
        super().__init__(message, stage=stage, kind="time")


class Cancelled(ReproError):
    """Cooperative cancellation was requested via a :class:`CancelToken`."""

    def __init__(self, message: str = "operation cancelled", stage: Optional[str] = None) -> None:
        super().__init__(message)
        self.stage = stage


class EnumerationTruncated(ReproError):
    """A model enumeration stopped at its limit with models remaining.

    ``count`` is the number of models produced before truncation -- a
    sound lower bound on the true model count.
    """

    def __init__(self, message: str, count: int = 0) -> None:
        super().__init__(message)
        self.count = count


class TransientError(ReproError):
    """An infrastructure fault that may pass on retry.

    Raised (or injected) for conditions that are properties of the
    *execution*, not the question being asked: flaky I/O, a chaos-plan
    fault, a worker lost mid-flight.  The batch supervisor retries
    these with backoff instead of failing the job.
    """

    def __init__(self, message: str, stage: Optional[str] = None) -> None:
        super().__init__(message)
        self.stage = stage


class WorkerCrash(TransientError):
    """A worker process died (killed, OOM, broken pool) mid-job."""


#: The exceptions a governed loop may raise when interrupted; catch this
#: tuple to degrade gracefully instead of crashing.
GOVERNED_ERRORS = (ResourceExhausted, Cancelled)

#: Classification labels for :func:`error_kind`.
TRANSIENT = "transient"
PERMANENT = "permanent"


def error_kind(error: Union[BaseException, type]) -> str:
    """``TRANSIENT`` or ``PERMANENT`` for a failure.

    Transient: :class:`TransientError` (incl. :class:`WorkerCrash`),
    any :class:`concurrent.futures` executor breakage, plain
    :class:`OSError` I/O trouble and pickling failures at the process
    boundary.  Everything else -- governed exhaustion, cancellation,
    unsatisfiable instances, genuine bugs -- is permanent: the same
    question would fail the same way again.
    """
    cls = error if isinstance(error, type) else type(error)
    if issubclass(cls, TransientError):
        return TRANSIENT
    if issubclass(cls, GOVERNED_ERRORS) or issubclass(cls, ReproError):
        return PERMANENT
    try:  # BrokenExecutor covers BrokenProcessPool
        from concurrent.futures import BrokenExecutor

        if issubclass(cls, BrokenExecutor):
            return TRANSIENT
    except ImportError:  # pragma: no cover - stdlib always has it
        pass
    import pickle

    if issubclass(cls, (OSError, EOFError, pickle.PickleError)):
        return TRANSIENT
    return PERMANENT


def is_transient(error: Union[BaseException, type]) -> bool:
    """Whether a failure is worth retrying (see :func:`error_kind`)."""
    return error_kind(error) == TRANSIENT
