"""The structured exception taxonomy for resource-governed execution.

Every error the pipeline raises deliberately derives from
:class:`ReproError`, so callers (the explanation engine, the CLI) can
distinguish *governed* outcomes -- a deadline fired, a work budget ran
out, the user cancelled -- from genuine internal errors, and map each
to a graceful degradation or a distinct exit code.

The taxonomy::

    ReproError
    ├── ResourceExhausted          a work budget ran out
    │   └── DeadlineExceeded       the wall-clock deadline passed
    ├── Cancelled                  cooperative cancellation was requested
    └── EnumerationTruncated       a model enumeration hit its limit
                                   with models still remaining

``EnumerationTruncated`` carries the partial count so callers can still
use the lower bound.  ``GOVERNED_ERRORS`` is the tuple to catch when a
caller wants to degrade gracefully on any governed interruption.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "Cancelled",
    "EnumerationTruncated",
    "GOVERNED_ERRORS",
]


class ReproError(Exception):
    """Base class for all structured errors raised by this package."""


class ResourceExhausted(ReproError):
    """A work budget (conflicts, rewrite steps, models, ...) ran out.

    Attributes
    ----------
    stage:
        The pipeline stage whose checkpoint detected exhaustion
        (``"sat"``, ``"rewrite"``, ``"enumerate"``, ``"encode"``,
        ``"lift"``, ``"project"``, ``"simulate"``), when known.
    kind:
        The budget counter that ran out (``"conflicts"``,
        ``"rewrite_steps"``, ``"models"``, ``"candidates"``,
        ``"rounds"``, ``"assignments"``, ``"total"``), when known.
    """

    def __init__(
        self,
        message: str,
        stage: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.kind = kind


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed (time is a resource too)."""

    def __init__(self, message: str, stage: Optional[str] = None) -> None:
        super().__init__(message, stage=stage, kind="time")


class Cancelled(ReproError):
    """Cooperative cancellation was requested via a :class:`CancelToken`."""

    def __init__(self, message: str = "operation cancelled", stage: Optional[str] = None) -> None:
        super().__init__(message)
        self.stage = stage


class EnumerationTruncated(ReproError):
    """A model enumeration stopped at its limit with models remaining.

    ``count`` is the number of models produced before truncation -- a
    sound lower bound on the true model count.
    """

    def __init__(self, message: str, count: int = 0) -> None:
        super().__init__(message)
        self.count = count


#: The exceptions a governed loop may raise when interrupted; catch this
#: tuple to degrade gracefully instead of crashing.
GOVERNED_ERRORS = (ResourceExhausted, Cancelled)
