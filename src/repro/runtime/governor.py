"""Deadlines, work budgets, cancellation and the composable Governor.

Every expensive loop in the pipeline -- CDCL search, the rewrite
fixpoint, model enumeration, candidate-route encoding, the lift search,
the control-plane simulation -- calls :meth:`Governor.checkpoint` once
per unit of work.  A checkpoint is cheap (a few dict updates and one
``time.monotonic`` call) and performs, in order:

1. per-stage accounting (always),
2. deterministic fault injection (tests only; see
   :mod:`repro.runtime.faults`),
3. the cooperative-cancellation check,
4. the wall-clock deadline check,
5. the work-budget charge for the stage's counter.

Loops take an ``Optional[Governor]`` and skip the call entirely when it
is ``None``, so ungoverned runs are byte-identical to the pre-governor
behaviour.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from .errors import Cancelled, DeadlineExceeded, ResourceExhausted

__all__ = ["Deadline", "WorkBudget", "CancelToken", "Governor", "split_budget"]


def split_budget(total: Optional[int], jobs: int) -> Optional[Tuple[int, ...]]:
    """Deterministic per-job shares of an aggregate work budget.

    Used by the batch farm to hand each of ``jobs`` jobs its own
    governor while honouring one ``--budget N`` flag for the whole
    batch.  The shares sum to exactly ``total`` (no remainder unit is
    silently dropped): the first ``total % jobs`` jobs get one extra
    unit, and since batch enumeration order is deterministic, so is
    every job's share.  ``None`` (unlimited) splits to ``None``.

    The one documented exception to exact conservation: every job is
    guaranteed at least one unit, so a budget smaller than the job
    count is inflated to one unit per job -- a tiny budget over a
    large batch degrades jobs individually instead of zeroing them
    all.
    """
    if total is None:
        return None
    if jobs <= 0:
        raise ValueError(f"cannot split a budget across {jobs} jobs")
    base, remainder = divmod(total, jobs)
    shares = tuple(
        base + 1 if index < remainder else base for index in range(jobs)
    )
    if base == 0:
        shares = tuple(max(1, share) for share in shares)
    return shares


class Deadline:
    """A wall-clock deadline based on a monotonic clock.

    >>> deadline = Deadline(seconds=5.0)
    >>> deadline.expired()
    False
    """

    __slots__ = ("seconds", "_expires_at", "_clock")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds < 0:
            raise ValueError(f"deadline must be non-negative, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock
        self._expires_at = clock() + self.seconds

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(seconds)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, stage: Optional[str] = None) -> None:
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.seconds:g}s exceeded"
                + (f" during stage {stage!r}" if stage else ""),
                stage=stage,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline({self.seconds:g}s, remaining={self.remaining():g}s)"


class WorkBudget:
    """Named work counters with optional limits.

    The counters mirror the pipeline's units of work: SAT ``conflicts``,
    ``rewrite_steps``, enumerated ``models``, encoded/evaluated
    ``candidates``, simulation ``rounds``, projection ``assignments``,
    plus an aggregate ``total`` across all of them.  A limit of ``None``
    means unlimited (but spending is still tracked for accounting).
    """

    KINDS = (
        "conflicts",
        "rewrite_steps",
        "models",
        "candidates",
        "rounds",
        "assignments",
        "total",
    )

    def __init__(
        self,
        conflicts: Optional[int] = None,
        rewrite_steps: Optional[int] = None,
        models: Optional[int] = None,
        candidates: Optional[int] = None,
        rounds: Optional[int] = None,
        assignments: Optional[int] = None,
        total: Optional[int] = None,
    ) -> None:
        self.limits: Dict[str, Optional[int]] = {
            "conflicts": conflicts,
            "rewrite_steps": rewrite_steps,
            "models": models,
            "candidates": candidates,
            "rounds": rounds,
            "assignments": assignments,
            "total": total,
        }
        for kind, limit in self.limits.items():
            if limit is not None and limit < 0:
                raise ValueError(f"budget {kind!r} must be non-negative, got {limit}")
        self.spent: Dict[str, int] = {kind: 0 for kind in self.KINDS}

    def remaining(self, kind: str) -> Optional[int]:
        """Units left for ``kind``; ``None`` when unlimited."""
        limit = self.limits[kind]
        if limit is None:
            return None
        return max(0, limit - self.spent[kind])

    def spend(self, kind: str, amount: int = 1, stage: Optional[str] = None) -> None:
        """Charge ``amount`` units of ``kind`` (plus the aggregate).

        Raises :class:`ResourceExhausted` when either the kind's limit
        or the ``total`` limit is exceeded.
        """
        if kind not in self.spent:
            raise ValueError(f"unknown budget kind {kind!r}; known: {', '.join(self.KINDS)}")
        self.spent[kind] += amount
        if kind != "total":
            self.spent["total"] += amount
        for charged in (kind, "total"):
            limit = self.limits[charged]
            if limit is not None and self.spent[charged] > limit:
                raise ResourceExhausted(
                    f"work budget exhausted: {charged} limit of {limit} exceeded"
                    + (f" during stage {stage!r}" if stage else ""),
                    stage=stage,
                    kind=charged,
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [
            f"{kind}={self.spent[kind]}/{self.limits[kind]}"
            for kind in self.KINDS
            if self.limits[kind] is not None
        ]
        return f"WorkBudget({', '.join(parts) or 'unlimited'})"


class CancelToken:
    """A cooperative cancellation flag, checked at every checkpoint."""

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        self._cancelled = True
        self.reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def check(self, stage: Optional[str] = None) -> None:
        if self._cancelled:
            raise Cancelled(
                self.reason or "operation cancelled",
                stage=stage,
            )


class Governor:
    """Composable execution governor: deadline + budget + cancellation.

    One governor instance is threaded through an entire pipeline run;
    its accounting therefore reflects the whole run, and its budget is
    shared across stages (the aggregate ``total`` counter makes a
    single ``--budget N`` CLI flag meaningful).
    """

    #: Which budget counter each stage charges at its checkpoints.
    STAGE_KINDS: Dict[str, str] = {
        "sat": "conflicts",
        "rewrite": "rewrite_steps",
        "enumerate": "models",
        "encode": "candidates",
        "lift": "candidates",
        "project": "assignments",
        "simulate": "rounds",
    }

    def __init__(
        self,
        deadline: Optional[Deadline] = None,
        budget: Optional[WorkBudget] = None,
        token: Optional[CancelToken] = None,
        faults=None,
        observer: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self.deadline = deadline
        self.budget = budget
        self.token = token
        self.faults = faults
        #: Passive checkpoint subscriber ``(stage, amount) -> None``;
        #: :meth:`repro.obs.Instrumentation.watch` attaches one so
        #: metrics piggyback on the already-threaded checkpoint seam.
        #: Observers run before any governed check can raise, so
        #: interrupted work is still accounted for.
        self.observer = observer
        self.checkpoints: Dict[str, int] = {}

    @classmethod
    def of(
        cls,
        timeout: Optional[float] = None,
        budget: Optional[int] = None,
        token: Optional[CancelToken] = None,
    ) -> "Governor":
        """Convenience constructor matching the CLI flags: an optional
        wall-clock ``timeout`` in seconds and an aggregate work
        ``budget`` shared across all stages."""
        return cls(
            deadline=Deadline(timeout) if timeout is not None else None,
            budget=WorkBudget(total=budget) if budget is not None else None,
            token=token,
        )

    def checkpoint(self, stage: str, amount: int = 1) -> None:
        """One unit of work in ``stage``; raises on any governed limit."""
        self.checkpoints[stage] = self.checkpoints.get(stage, 0) + 1
        if self.observer is not None:
            self.observer(stage, amount)
        if self.faults is not None:
            self.faults.fire(stage, self.checkpoints[stage])
        if self.token is not None:
            self.token.check(stage)
        if self.deadline is not None:
            self.deadline.check(stage)
        if self.budget is not None:
            kind = self.STAGE_KINDS.get(stage, "total")
            self.budget.spend(kind, amount, stage=stage)

    def accounting(self) -> Dict[str, int]:
        """Checkpoint counts per stage plus budget spend per counter."""
        report: Dict[str, int] = {
            f"checkpoints:{stage}": count
            for stage, count in sorted(self.checkpoints.items())
        }
        if self.budget is not None:
            for kind in WorkBudget.KINDS:
                if self.budget.spent[kind]:
                    report[f"budget:{kind}"] = self.budget.spent[kind]
        return report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        if self.deadline is not None:
            parts.append(repr(self.deadline))
        if self.budget is not None:
            parts.append(repr(self.budget))
        if self.token is not None and self.token.cancelled:
            parts.append("cancelled")
        return f"Governor({', '.join(parts) or 'unlimited'})"
