"""Deterministic fault injection for robustness tests.

A :class:`FaultPlan` is attached to a :class:`~repro.runtime.governor.Governor`
and fires a configured exception at exactly the Nth checkpoint of a
named stage.  Because every governed loop counts its checkpoints
deterministically, a fault plan turns "what happens if the SAT solver
dies mid-search?" into a reproducible unit test::

    plan = FaultPlan()
    plan.inject("sat", at=3)                    # ResourceExhausted at the
    governor = Governor(faults=plan)            # 3rd sat checkpoint
    ...

``inject`` accepts an exception class (instantiated with a descriptive
message), a ready-made exception instance, or a zero-argument callable
returning one -- whatever the test needs.  ``plan.fired`` records every
fault that actually triggered, so tests can assert the fault was hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from .errors import ResourceExhausted

__all__ = ["FaultPlan", "FaultSpec"]

ExcLike = Union[BaseException, type, Callable[[], BaseException]]


@dataclass
class FaultSpec:
    """One armed fault: stage name, checkpoint index, exception source."""

    stage: str
    at: int
    make: Callable[[], BaseException]
    once: bool = True
    triggered: int = 0


class FaultPlan:
    """A deterministic schedule of injected faults, keyed by stage."""

    def __init__(self) -> None:
        self._specs: List[FaultSpec] = []
        self.fired: List[Tuple[str, int]] = []

    def inject(
        self,
        stage: str,
        at: int = 1,
        exc: Optional[ExcLike] = None,
        message: Optional[str] = None,
        once: bool = True,
    ) -> "FaultPlan":
        """Arm a fault at the ``at``-th checkpoint of ``stage`` (1-based).

        ``once=False`` re-fires at every subsequent checkpoint of the
        stage from ``at`` on (useful to model a persistently exhausted
        resource).  Returns ``self`` for chaining.
        """
        if at < 1:
            raise ValueError(f"checkpoint index must be >= 1, got {at}")
        text = message or f"injected fault at {stage} checkpoint {at}"

        if exc is None:
            make: Callable[[], BaseException] = lambda: ResourceExhausted(text, stage=stage)
        elif isinstance(exc, BaseException):
            make = lambda: exc
        elif isinstance(exc, type) and issubclass(exc, BaseException):
            if issubclass(exc, ResourceExhausted):
                make = lambda: exc(text, stage=stage)
            else:
                make = lambda: exc(text)
        elif callable(exc):
            make = exc
        else:
            raise TypeError(f"exc must be an exception, class or callable, got {exc!r}")
        self._specs.append(FaultSpec(stage=stage, at=at, make=make, once=once))
        return self

    def fire(self, stage: str, count: int) -> None:
        """Called by the governor at every checkpoint; raises if armed."""
        for spec in self._specs:
            if spec.stage != stage:
                continue
            due = count == spec.at if spec.once else count >= spec.at
            if due:
                spec.triggered += 1
                self.fired.append((stage, count))
                raise spec.make()

    @property
    def exhausted(self) -> bool:
        """Whether every armed one-shot fault has triggered."""
        return all(spec.triggered > 0 for spec in self._specs if spec.once)
