"""Deterministic fault injection for robustness tests.

A :class:`FaultPlan` is attached to a :class:`~repro.runtime.governor.Governor`
and fires a configured exception at exactly the Nth checkpoint of a
named stage.  Because every governed loop counts its checkpoints
deterministically, a fault plan turns "what happens if the SAT solver
dies mid-search?" into a reproducible unit test::

    plan = FaultPlan()
    plan.inject("sat", at=3)                    # ResourceExhausted at the
    governor = Governor(faults=plan)            # 3rd sat checkpoint
    ...

``inject`` accepts an exception class (instantiated with a descriptive
message), a ready-made exception instance, or a zero-argument callable
returning one -- whatever the test needs.  ``plan.fired`` records every
fault that actually triggered, so tests can assert the fault was hit.

Process-level chaos
-------------------
:class:`FaultPlan` injects *inside* a governed loop; :class:`ChaosPlan`
extends the same idea to the process level for the batch farm.  A
chaos plan is a frozen, picklable schedule of worker-level events --
kill the worker at a given job, hang it, fail the first K attempts of
a job with a :class:`~repro.runtime.errors.TransientError`, corrupt a
stored artifact right after it is written -- each keyed by job id (or
per-process job ordinal) and attempt number, so every recovery path of
the supervisor can be exercised deterministically::

    plan = (ChaosPlan()
            .kill("R2/router/Req1")           # worker dies on attempt 1
            .flaky("R1/router/Req1", times=2) # transient on attempts 1-2
            .corrupt("R2/router/Req1"))       # truncate the stored answer

``ChaosPlan.parse`` accepts the same schedule as compact text (the
CLI's ``--chaos`` flag): ``kill@JOB``, ``hang[:SECONDS]@JOB``,
``flaky[:TIMES]@JOB``, ``corrupt[:STAGE]@JOB``, comma-separated, where
``JOB`` is a job id, ``#N`` for the Nth job a worker process picks up,
or ``*`` for any job.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple, Union

from .errors import ResourceExhausted

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "ChaosPlan",
    "ChaosEvent",
    "CHAOS_KILL",
    "CHAOS_HANG",
    "CHAOS_FLAKY",
    "CHAOS_CORRUPT",
]

ExcLike = Union[BaseException, type, Callable[[], BaseException]]


@dataclass
class FaultSpec:
    """One armed fault: stage name, checkpoint index, exception source."""

    stage: str
    at: int
    make: Callable[[], BaseException]
    once: bool = True
    triggered: int = 0


class FaultPlan:
    """A deterministic schedule of injected faults, keyed by stage."""

    def __init__(self) -> None:
        self._specs: List[FaultSpec] = []
        self.fired: List[Tuple[str, int]] = []

    def inject(
        self,
        stage: str,
        at: int = 1,
        exc: Optional[ExcLike] = None,
        message: Optional[str] = None,
        once: bool = True,
    ) -> "FaultPlan":
        """Arm a fault at the ``at``-th checkpoint of ``stage`` (1-based).

        ``once=False`` re-fires at every subsequent checkpoint of the
        stage from ``at`` on (useful to model a persistently exhausted
        resource).  Returns ``self`` for chaining.
        """
        if at < 1:
            raise ValueError(f"checkpoint index must be >= 1, got {at}")
        text = message or f"injected fault at {stage} checkpoint {at}"

        if exc is None:
            make: Callable[[], BaseException] = lambda: ResourceExhausted(text, stage=stage)
        elif isinstance(exc, BaseException):
            make = lambda: exc
        elif isinstance(exc, type) and issubclass(exc, BaseException):
            if issubclass(exc, ResourceExhausted):
                make = lambda: exc(text, stage=stage)
            else:
                make = lambda: exc(text)
        elif callable(exc):
            make = exc
        else:
            raise TypeError(f"exc must be an exception, class or callable, got {exc!r}")
        self._specs.append(FaultSpec(stage=stage, at=at, make=make, once=once))
        return self

    def fire(self, stage: str, count: int) -> None:
        """Called by the governor at every checkpoint; raises if armed."""
        for spec in self._specs:
            if spec.stage != stage:
                continue
            due = count == spec.at if spec.once else count >= spec.at
            if due:
                spec.triggered += 1
                self.fired.append((stage, count))
                raise spec.make()

    @property
    def exhausted(self) -> bool:
        """Whether every armed one-shot fault has triggered."""
        return all(spec.triggered > 0 for spec in self._specs if spec.once)


# ---------------------------------------------------------------------------
# Process-level chaos

CHAOS_KILL = "kill"
CHAOS_HANG = "hang"
CHAOS_FLAKY = "flaky"
CHAOS_CORRUPT = "corrupt"

_CHAOS_ACTIONS = (CHAOS_KILL, CHAOS_HANG, CHAOS_FLAKY, CHAOS_CORRUPT)


@dataclass(frozen=True)
class ChaosEvent:
    """One armed process-level fault.

    A worker consults the plan once per job (and once more before
    persisting artifacts); an event fires when its target matches and
    the current attempt number is at most ``attempts`` -- so a fault
    armed with ``attempts=1`` hits the first try and lets the
    supervisor's retry succeed, while ``attempts=99`` drives the job
    into quarantine.
    """

    action: str
    #: Match by job id; ``None`` matches any job.
    job_id: Optional[str] = None
    #: Match by the 1-based ordinal of the job within its worker
    #: process (``kill the worker at its Nth job``); ``None`` ignores.
    ordinal: Optional[int] = None
    #: Fire while the job's attempt number is <= this.
    attempts: int = 1
    #: Hang duration (``hang`` only); the watchdog is expected to kill
    #: the worker long before this elapses.
    seconds: float = 3600.0
    #: Artifact stage to corrupt (``corrupt`` only).
    stage: str = "explanation"
    #: Process exit status for ``kill`` (137 = SIGKILL's shell code).
    exit_code: int = 137

    def __post_init__(self) -> None:
        if self.action not in _CHAOS_ACTIONS:
            raise ValueError(f"unknown chaos action {self.action!r}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def matches(self, job_id: str, ordinal: int, attempt: int) -> bool:
        if self.job_id is not None and self.job_id != job_id:
            return False
        if self.ordinal is not None and self.ordinal != ordinal:
            return False
        return attempt <= self.attempts


@dataclass(frozen=True)
class ChaosPlan:
    """A frozen, picklable schedule of worker-level chaos events."""

    events: Tuple[ChaosEvent, ...] = ()

    # -- builders (each returns a new plan; the plan itself is frozen
    # -- so it can cross the process boundary safely) -------------------

    def _with(self, event: ChaosEvent) -> "ChaosPlan":
        return replace(self, events=self.events + (event,))

    def kill(
        self,
        job_id: Optional[str] = None,
        ordinal: Optional[int] = None,
        attempts: int = 1,
    ) -> "ChaosPlan":
        """Kill the worker process outright when it picks up the job."""
        return self._with(
            ChaosEvent(CHAOS_KILL, job_id=job_id, ordinal=ordinal, attempts=attempts)
        )

    def hang(
        self,
        job_id: Optional[str] = None,
        ordinal: Optional[int] = None,
        seconds: float = 3600.0,
        attempts: int = 1,
    ) -> "ChaosPlan":
        """Make the worker sleep mid-job (a hang for the watchdog)."""
        return self._with(
            ChaosEvent(
                CHAOS_HANG, job_id=job_id, ordinal=ordinal,
                seconds=seconds, attempts=attempts,
            )
        )

    def flaky(
        self,
        job_id: Optional[str] = None,
        ordinal: Optional[int] = None,
        times: int = 1,
    ) -> "ChaosPlan":
        """Raise a ``TransientError`` on the job's first ``times`` attempts."""
        return self._with(
            ChaosEvent(CHAOS_FLAKY, job_id=job_id, ordinal=ordinal, attempts=times)
        )

    def corrupt(
        self,
        job_id: Optional[str] = None,
        ordinal: Optional[int] = None,
        stage: str = "explanation",
        attempts: int = 1,
    ) -> "ChaosPlan":
        """Truncate the named stored artifact right after it is written."""
        return self._with(
            ChaosEvent(
                CHAOS_CORRUPT, job_id=job_id, ordinal=ordinal,
                stage=stage, attempts=attempts,
            )
        )

    # -- selection ------------------------------------------------------

    def select(
        self, action: str, job_id: str, ordinal: int, attempt: int
    ) -> List[ChaosEvent]:
        """The armed events of ``action`` matching this (job, attempt)."""
        return [
            event
            for event in self.events
            if event.action == action and event.matches(job_id, ordinal, attempt)
        ]

    @property
    def needs_process_isolation(self) -> bool:
        """Whether the plan would take down a serial (in-process) run."""
        return any(
            event.action in (CHAOS_KILL, CHAOS_HANG) for event in self.events
        )

    # -- text form (the CLI's --chaos flag) ----------------------------

    @classmethod
    def parse(cls, text: str) -> "ChaosPlan":
        """``kill@JOB,hang[:S]@JOB,flaky[:K]@JOB,corrupt[:STAGE]@JOB``.

        ``JOB`` is a job id, ``#N`` (per-worker-process ordinal) or
        ``*`` (any job).
        """
        plan = cls()
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            head, sep, target = clause.partition("@")
            if not sep or not target:
                raise ValueError(f"chaos clause {clause!r} needs @TARGET")
            action, _, qualifier = head.partition(":")
            if action not in _CHAOS_ACTIONS:
                raise ValueError(f"unknown chaos action {action!r} in {clause!r}")
            job_id: Optional[str] = None
            ordinal: Optional[int] = None
            if target == "*":
                pass
            elif target.startswith("#"):
                ordinal = int(target[1:])
            else:
                job_id = target
            if action == CHAOS_KILL:
                plan = plan.kill(job_id, ordinal)
            elif action == CHAOS_HANG:
                seconds = float(qualifier) if qualifier else 3600.0
                plan = plan.hang(job_id, ordinal, seconds=seconds)
            elif action == CHAOS_FLAKY:
                times = int(qualifier) if qualifier else 1
                plan = plan.flaky(job_id, ordinal, times=times)
            else:
                # Parsed corrupt events fire on every attempt: the CLI
                # intent is "this job's stored artifact ends up bad",
                # regardless of which attempt wrote it.  Attempt-scoped
                # corruption is a builder-only (test) concern.
                stage = qualifier or "explanation"
                plan = plan.corrupt(
                    job_id, ordinal, stage=stage, attempts=1_000_000
                )
        return plan
