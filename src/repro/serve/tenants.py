"""Tenancy: admission control and per-tenant resource caps.

The serving layer is multi-tenant in the narrow, honest sense a
single-process research service can be: every request names a tenant
(the ``X-Tenant`` header, defaulting to ``public``), and the
:class:`TenantBook` decides

* **whether the request may run now** -- a token-bucket rate limit per
  tenant, refilling continuously, answering 429 with a precise
  ``Retry-After`` when empty.  One tenant hammering the service drains
  only its own bucket; everyone else's admission decisions are
  independent (the book's lock is held only for arithmetic, never
  across a batch).
* **how big the request may be** -- per-tenant caps on farm workers
  and on the per-job :class:`~repro.runtime.Governor` limits (engine
  budget and wall-clock timeout).  Shaping clamps rather than
  rejects: a request asking for more than its tenant's cap runs at
  the cap, and a request asking for *nothing* (no governor) gets the
  tenant's cap imposed, so no tenant can submit unbounded work.

Configuration is a JSON document (the ``--tenant-config`` flag)::

    {"schema": "repro-serve-tenants/1",
     "tenants": {
       "alice": {"rate": 2.0, "burst": 4, "max_workers": 2,
                 "max_budget": 200000, "max_timeout": 30.0},
       "bob":   {"rate": 0.5, "burst": 1}}}

Unknown tenants fall back to the ``default`` entry when present, else
to built-in permissive defaults.  All clocks are injectable for tests.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "TENANTS_SCHEMA",
    "TenantConfigError",
    "TenantPolicy",
    "TokenBucket",
    "TenantBook",
]

TENANTS_SCHEMA = "repro-serve-tenants/1"


class TenantConfigError(ValueError):
    """A malformed tenant-configuration document."""


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission and sizing limits."""

    #: Sustained admissions per second (token-bucket refill rate).
    rate: float = 10.0
    #: Bucket capacity: how many requests may land back-to-back.
    burst: int = 10
    #: Cap on farm workers one request may use.
    max_workers: int = 4
    #: Cap (and default) for the per-job engine work budget; ``None``
    #: leaves the request's own budget untouched.
    max_budget: Optional[int] = None
    #: Cap (and default) for the per-job wall-clock timeout, seconds.
    max_timeout: Optional[float] = None
    #: Fair-share weight in the queue's deficit-round-robin scheduler:
    #: a tenant at weight 2.0 is offered dispatch slots twice as often
    #: as one at 1.0 when both have work queued.  Weights do not gate
    #: admission (the bucket does) and bank no credit while idle.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise TenantConfigError("rate must be > 0")
        if self.burst < 1:
            raise TenantConfigError("burst must be >= 1")
        if self.max_workers < 1:
            raise TenantConfigError("max_workers must be >= 1")
        if self.max_budget is not None and self.max_budget < 0:
            raise TenantConfigError("max_budget must be >= 0")
        if self.max_timeout is not None and self.max_timeout < 0:
            raise TenantConfigError("max_timeout must be >= 0")
        if self.weight <= 0:
            raise TenantConfigError("weight must be > 0")

    @classmethod
    def from_payload(cls, payload: object) -> "TenantPolicy":
        if not isinstance(payload, dict):
            raise TenantConfigError("tenant entries must be objects")
        known = {
            "rate", "burst", "max_workers", "max_budget", "max_timeout",
            "weight",
        }
        unknown = set(payload) - known
        if unknown:
            raise TenantConfigError(f"unknown tenant keys: {sorted(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise TenantConfigError(f"malformed tenant entry: {exc}")


class TokenBucket:
    """A continuously-refilling token bucket.

    Starts full.  ``take()`` consumes one token if available, else
    reports how long until one will be -- the 429 ``Retry-After``
    value, rounded up to a whole second by the caller.  The clock is
    injectable so tests never sleep.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)
        self._updated = now

    def take(self) -> Tuple[bool, float]:
        """(admitted, seconds-until-next-token-if-not)."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate


#: Built-in fallback when no config names the tenant (permissive: the
#: service is a lab tool first; strictness is opt-in via config).
_DEFAULT_POLICY = TenantPolicy()


class TenantBook:
    """The tenant registry: admission + request shaping.

    One book per server process.  Buckets are created lazily per
    tenant name, so tenants absent from the config still get isolated
    buckets (under the default policy) rather than sharing one.
    """

    def __init__(
        self,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policies: Dict[str, TenantPolicy] = dict(policies or {})
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    @classmethod
    def from_json(
        cls,
        text: str,
        clock: Callable[[], float] = time.monotonic,
    ) -> "TenantBook":
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise TenantConfigError(f"malformed tenant config: {exc}")
        if (
            not isinstance(document, dict)
            or document.get("schema") != TENANTS_SCHEMA
        ):
            raise TenantConfigError(
                f"tenant config must carry schema {TENANTS_SCHEMA!r}"
            )
        entries = document.get("tenants", {})
        if not isinstance(entries, dict):
            raise TenantConfigError("tenants must be an object")
        policies = {
            str(name): TenantPolicy.from_payload(entry)
            for name, entry in entries.items()
        }
        return cls(policies, clock=clock)

    @classmethod
    def from_file(cls, path: str) -> "TenantBook":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------

    def policy_for(self, tenant: str) -> TenantPolicy:
        policy = self.policies.get(tenant)
        if policy is None:
            policy = self.policies.get("default", _DEFAULT_POLICY)
        return policy

    def _bucket_for(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                policy = self.policy_for(tenant)
                bucket = TokenBucket(policy.rate, policy.burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str) -> Tuple[bool, float]:
        """Whether ``tenant`` may submit now; else seconds to wait."""
        return self._bucket_for(tenant).take()

    def shape(self, tenant: str, request):
        """``request`` clamped to ``tenant``'s policy caps.

        Returns a (possibly identical) :class:`repro.api.ExplainRequest`.
        Caps clamp; absent request limits are *imposed* so no tenant
        runs ungoverned when its policy sets a ceiling.
        """
        from dataclasses import replace

        policy = self.policy_for(tenant)
        changes = {}
        if request.workers > policy.max_workers:
            changes["workers"] = policy.max_workers
        if policy.max_budget is not None and (
            request.budget is None or request.budget > policy.max_budget
        ):
            changes["budget"] = policy.max_budget
        if policy.max_timeout is not None and (
            request.timeout is None or request.timeout > policy.max_timeout
        ):
            changes["timeout"] = policy.max_timeout
        return replace(request, **changes) if changes else request
