"""The server's job machine: fair-share queue, runners, progress events.

A :class:`ServeJob` is one submitted batch moving through
``QUEUED -> RUNNING -> DONE|FAILED|DRAINED`` (the states are defined
by :mod:`repro.api`; the HTTP layer serializes them as
:class:`repro.api.JobStatus` documents).  A :class:`JobQueue` owns the
jobs, per-tenant pending queues, and a fixed pool of runner threads
that drain them through :func:`repro.api.explain_batch`.

**Fair-share scheduling.**  Dispatch order is deficit-weighted round
robin over tenants: the scheduler rotates over tenants with queued
work, banking each tenant's :attr:`~repro.serve.tenants.TenantPolicy.weight`
per visit and dispatching one batch per whole unit of banked credit.
Within a tenant, batches stay FIFO; across tenants, a 200-batch flood
from one tenant costs everyone else at most one scheduling round of
wait, not the whole flood.  Idle tenants bank nothing, so a quiet
tenant cannot burst past its weight later.  With a single tenant (or
the default ``concurrency=1``) the schedule degenerates to the old
global FIFO exactly.

**Concurrency and the fleet.**  ``concurrency`` runner threads execute
up to that many batches at once.  Runner threads are long-lived on
purpose: in-process (serial) batches keep their per-thread resident
caches warm across batches, and fleet-backed batches multiplex onto
the shared :class:`~repro.farm.fleet.WorkerFleet` passed at
construction, so concurrent batches borrow from one warm worker pool
instead of forking a process pool each.

**Retention.**  Completed jobs (and their event logs) are evicted by
:class:`RetentionPolicy` -- a TTL since finish and/or a cap on retained
terminal jobs, oldest-finished first.  Running and queued jobs are
never evicted; for retained jobs the ``/events`` replay-from-seq
contract is untouched.

Every state change and every settled job appends a monotonically
numbered event to the job's event log and wakes waiters on the
queue-wide condition; the HTTP event stream is "replay the log from
seq N, then block for more" -- late subscribers see the full history,
and there is no per-subscriber state server-side.

Drain (SIGTERM) is cooperative and crash-safe by construction: the
stop event is threaded into every running batch's supervisor, which
stops dispatching new job families, lets in-flight families finish and
journal, and returns a partial report.  Still-queued jobs flip to
``DRAINED`` without running.  Because every settled job is journaled,
resubmitting a drained batch with ``resume=True`` replays only the
remainder (see :mod:`repro.farm.supervise`).
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from .. import api
from ..farm.fleet import WorkerFleet
from ..obs import MetricsRegistry
from .tenants import TenantBook

__all__ = ["RetentionPolicy", "ServeJob", "JobQueue"]


@dataclass(frozen=True)
class RetentionPolicy:
    """How long completed jobs (and their event logs) are retained.

    ``None`` fields disable that limit; the default policy retains
    everything forever (the pre-retention behavior).  Only terminal
    jobs -- ``DONE`` / ``FAILED`` / ``DRAINED`` -- are ever evicted.
    """

    #: Seconds after ``finished_at`` before a terminal job may be
    #: evicted.
    ttl_s: Optional[float] = None
    #: Retain at most this many terminal jobs (oldest-finished evicted
    #: first once exceeded).
    max_completed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ttl_s is not None and self.ttl_s < 0:
            raise ValueError("ttl_s must be >= 0")
        if self.max_completed is not None and self.max_completed < 0:
            raise ValueError("max_completed must be >= 0")

    @property
    def bounded(self) -> bool:
        return self.ttl_s is not None or self.max_completed is not None


class ServeJob:
    """One submitted batch and everything observable about it.

    Mutable on purpose (runners and progress callbacks write, handler
    threads read); every mutation happens under the owning queue's
    lock, and readers snapshot via :meth:`status` /
    :meth:`events_since` rather than touching fields directly.
    """

    def __init__(
        self,
        job_id: str,
        tenant: str,
        request: api.ExplainRequest,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.request = request
        self.state = api.STATE_QUEUED
        self.submitted_at = clock()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.report: Optional[api.BatchReport] = None
        self.exit_code: Optional[int] = None
        #: Settled-job tallies, updated live by the progress callback.
        self.counts: Dict[str, int] = {
            "settled": 0, "ok": 0, "degraded": 0, "failed": 0,
            "quarantined": 0, "cached": 0,
        }
        self.total = 0
        self.events: List[Dict[str, object]] = []

    # The queue calls these with its lock held. -------------------------

    def _event(self, kind: str, **payload: object) -> None:
        self.events.append({"seq": len(self.events), "event": kind, **payload})

    def _tally(self, result) -> None:
        self.counts["settled"] += 1
        if result.ok:
            self.counts["ok"] += 1
        if result.degraded:
            self.counts["degraded"] += 1
        if result.status == "ERROR":
            self.counts["failed"] += 1
        if result.quarantined:
            self.counts["quarantined"] += 1
        if result.cached:
            self.counts["cached"] += 1

    @property
    def terminal(self) -> bool:
        return self.state in (
            api.STATE_DONE, api.STATE_FAILED, api.STATE_DRAINED
        )

    # -------------------------------------------------------------------

    def status(self) -> api.JobStatus:
        """A consistent snapshot (call via :meth:`JobQueue.status`)."""
        return api.JobStatus(
            id=self.id,
            state=self.state,
            tenant=self.tenant,
            scenario=self.request.name,
            total=self.total,
            settled=self.counts["settled"],
            ok=self.counts["ok"],
            degraded=self.counts["degraded"],
            failed=self.counts["failed"],
            quarantined=self.counts["quarantined"],
            cached=self.counts["cached"],
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
            exit_code=self.exit_code,
        )


class JobQueue:
    """Fair-share queue of batches plus the runner threads executing them.

    ``runner`` defaults to :func:`repro.api.explain_batch` and is
    injectable so queue tests exercise the machine without solving
    anything.  ``cache_dir`` is the server's shared artifact store:
    requests that do not opt out of caching are rewritten onto it, so
    every batch of the process hits one store.  ``tenants`` supplies
    fair-share weights (absent tenants weigh 1.0); ``fleet`` is the
    shared worker pool batches execute on (``None`` keeps the
    per-batch pool/serial paths); ``retention`` bounds how long
    finished jobs stay queryable.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        runner: Optional[Callable[..., api.BatchReport]] = None,
        tenants: Optional[TenantBook] = None,
        concurrency: int = 1,
        fleet: Optional[WorkerFleet] = None,
        retention: Optional[RetentionPolicy] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.cache_dir = cache_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._runner = runner if runner is not None else api.explain_batch
        self._tenants = tenants
        self.concurrency = max(1, concurrency)
        self.fleet = fleet
        self.retention = retention if retention is not None else RetentionPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, ServeJob] = {}
        #: Per-tenant FIFO of queued jobs, keyed by tenant name; the
        #: rotation order is first-submission order (stable).
        self._queues: Dict[str, Deque[ServeJob]] = {}
        self._order: List[str] = []
        self._deficits: Dict[str, float] = {}
        self._cursor = 0
        #: Whether the tenant under the cursor has banked its weight
        #: for the current stop (reset whenever the rotation moves on).
        self._banked = False
        self._stop = threading.Event()
        self._serial = 0
        self._runners = [
            threading.Thread(
                target=self._run, name=f"repro-serve-runner-{index}",
                daemon=True,
            )
            for index in range(self.concurrency)
        ]
        for thread in self._runners:
            thread.start()

    # -- submission ----------------------------------------------------

    def _shape(self, request: api.ExplainRequest) -> api.ExplainRequest:
        from dataclasses import replace

        if not request.no_cache and self.cache_dir is not None:
            if request.cache_dir != self.cache_dir:
                request = replace(request, cache_dir=self.cache_dir)
        return request

    def submit(self, request: api.ExplainRequest, tenant: str = "public") -> ServeJob:
        """Enqueue one validated request; returns its job record."""
        request = self._shape(request)
        with self._wake:
            if self._stop.is_set():
                raise RuntimeError("server is draining; not accepting work")
            self._serial += 1
            job = ServeJob(
                f"job-{self._serial:06d}", tenant, request, clock=self._clock
            )
            job._event("queued", tenant=tenant, scenario=request.name)
            self._jobs[job.id] = job
            if tenant not in self._queues:
                self._queues[tenant] = deque()
                self._order.append(tenant)
            self._queues[tenant].append(job)
            self.metrics.count("serve.jobs.submitted")
            self._evict_locked()
            self._wake.notify_all()
            return job

    # -- read side -----------------------------------------------------

    def get(self, job_id: str) -> Optional[ServeJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> Optional[api.JobStatus]:
        with self._lock:
            job = self._jobs.get(job_id)
            return job.status() if job is not None else None

    def jobs(self) -> List[api.JobStatus]:
        with self._lock:
            return [job.status() for job in self._jobs.values()]

    def events_since(
        self,
        job_id: str,
        seq: int,
        timeout: Optional[float] = None,
    ) -> List[Dict[str, object]]:
        """Events of ``job_id`` with ``seq`` and up, blocking for news.

        Returns an empty list only when the job is already terminal and
        has no events past ``seq`` (the stream's end), on timeout, or
        when the job is unknown (never submitted, or evicted by the
        retention policy).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            job = self._jobs.get(job_id)
            if job is None:
                return []
            while True:
                if len(job.events) > seq:
                    return [dict(event) for event in job.events[seq:]]
                if job.state not in (api.STATE_QUEUED, api.STATE_RUNNING):
                    return []
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return []
                self._wake.wait(remaining)

    # -- retention -----------------------------------------------------

    def _evict_locked(self) -> None:
        """Apply the retention policy (caller holds the lock).

        Only terminal jobs are candidates; eviction order is
        oldest-finished first.  Runs on submission and completion, so
        a quiet queue retains slightly past its TTL until the next
        state change -- acceptable for a bound that exists to cap
        memory, not to redact results on a clock edge.
        """
        if not self.retention.bounded:
            return
        terminal = sorted(
            (job for job in self._jobs.values() if job.terminal),
            key=lambda job: (job.finished_at or 0.0, job.id),
        )
        doomed: List[ServeJob] = []
        if self.retention.ttl_s is not None:
            horizon = self._clock() - self.retention.ttl_s
            while terminal and (terminal[0].finished_at or 0.0) <= horizon:
                doomed.append(terminal.pop(0))
        if self.retention.max_completed is not None:
            while len(terminal) > self.retention.max_completed:
                doomed.append(terminal.pop(0))
        for job in doomed:
            del self._jobs[job.id]
            self.metrics.count("serve.jobs.evicted")

    # -- the fair-share scheduler --------------------------------------

    def _weight(self, tenant: str) -> float:
        if self._tenants is None:
            return 1.0
        return self._tenants.policy_for(tenant).weight

    def _next_locked(self) -> Optional[ServeJob]:
        """Pick the next batch by deficit-weighted round robin.

        Arriving at a tenant with queued work banks its weight once;
        one whole unit of credit buys one dispatch, and the rotation
        stays on the tenant while its credit lasts -- so a weight-3
        tenant drains three batches per stop to a weight-1 tenant's
        one.  Tenants with empty queues forfeit their bank (no credit
        accrues while idle).  Terminates because every full rotation
        banks at least ``min(weight)`` into some non-empty tenant.
        """
        if not any(self._queues[tenant] for tenant in self._order):
            return None
        while True:
            tenant = self._order[self._cursor % len(self._order)]
            queue = self._queues[tenant]
            if not queue:
                self._deficits[tenant] = 0.0
                self._cursor += 1
                self._banked = False
                continue
            if not self._banked:
                self._deficits[tenant] = (
                    self._deficits.get(tenant, 0.0) + self._weight(tenant)
                )
                self._banked = True
            if self._deficits[tenant] >= 1.0:
                self._deficits[tenant] -= 1.0
                self.metrics.count("serve.sched.dispatch")
                return queue.popleft()
            self._cursor += 1
            self._banked = False

    # -- runners -------------------------------------------------------

    def _drain_queued_locked(self) -> None:
        for queue in self._queues.values():
            for job in queue:
                job.state = api.STATE_DRAINED
                job.finished_at = self._clock()
                job._event("drained")
            queue.clear()
        self._wake.notify_all()

    def _run(self) -> None:
        while True:
            with self._wake:
                job = None
                while job is None:
                    if self._stop.is_set():
                        self._drain_queued_locked()
                        return
                    job = self._next_locked()
                    if job is None:
                        self._wake.wait()
                job.state = api.STATE_RUNNING
                job.started_at = self._clock()
                job._event("started")
                self.metrics.observe(
                    f"serve.queue_wait_s.{job.tenant}",
                    max(0.0, job.started_at - job.submitted_at),
                )
                self._wake.notify_all()
            self._execute(job)

    def _progress(self, job: ServeJob):
        def on_settled(result) -> None:
            with self._wake:
                job._tally(result)
                job._event(
                    "settled",
                    job=result.job.job_id,
                    status=result.status,
                    cached=result.cached,
                    attempts=result.attempts,
                )
                self._wake.notify_all()

        return on_settled

    def _execute(self, job: ServeJob) -> None:
        try:
            extra = {} if self.fleet is None else {"fleet": self.fleet}
            report = self._runner(
                job.request, progress=self._progress(job), stop=self._stop,
                **extra,
            )
        except Exception as exc:  # noqa: BLE001 - the job absorbs it
            with self._wake:
                job.state = api.STATE_FAILED
                job.finished_at = self._clock()
                job.error = f"{type(exc).__name__}: {exc}"
                job._event("failed", error=job.error)
                self.metrics.count("serve.jobs.failed")
                self._observe_latency_locked(job)
                self._evict_locked()
                self._wake.notify_all()
            traceback.print_exc()
            return
        with self._wake:
            job.report = report
            job.total = len(report.results)
            drained = self._stop.is_set() and report.document.get(
                "counters", {}
            ).get("farm.supervise.drained", 0)
            job.state = api.STATE_DRAINED if drained else api.STATE_DONE
            job.finished_at = self._clock()
            job.exit_code = report.exit_code(
                timeout=job.request.timeout, budget=job.request.budget
            )
            job._event(
                "finished",
                state=job.state,
                exit_code=job.exit_code,
                total=job.total,
            )
            self.metrics.count("serve.jobs.completed")
            self._observe_latency_locked(job)
            counters = report.document.get("counters")
            if isinstance(counters, dict):
                for name, value in counters.items():
                    if isinstance(value, int):
                        self.metrics.count(name, value)
            self._evict_locked()
            self._wake.notify_all()

    def _observe_latency_locked(self, job: ServeJob) -> None:
        if job.started_at is not None and job.finished_at is not None:
            self.metrics.observe(
                f"serve.batch_s.{job.tenant}",
                max(0.0, job.finished_at - job.started_at),
            )

    # -- shutdown ------------------------------------------------------

    def drain(self, timeout: float = 60.0) -> bool:
        """Stop accepting and dispatching; wait for the queue to settle.

        Running batches (there may be up to ``concurrency``) see the
        stop event through their supervisors and return after their
        in-flight families journal; queued batches flip to
        ``DRAINED``.  Returns whether every runner wound down within
        ``timeout``.
        """
        with self._wake:
            self._stop.set()
            self._wake.notify_all()
        deadline = time.monotonic() + timeout
        for thread in self._runners:
            thread.join(max(0.0, deadline - time.monotonic()))
        return not any(thread.is_alive() for thread in self._runners)
