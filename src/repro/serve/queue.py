"""The server's job machine: queue, dispatcher, progress events.

A :class:`ServeJob` is one submitted batch moving through
``QUEUED -> RUNNING -> DONE|FAILED|DRAINED`` (the states are defined
by :mod:`repro.api`; the HTTP layer serializes them as
:class:`repro.api.JobStatus` documents).  A :class:`JobQueue` owns the
jobs, a FIFO of pending work, and one dispatcher thread that drains it
through :func:`repro.api.explain_batch` -- one batch at a time, on
purpose: batches already parallelize internally across farm workers
sharing one artifact store, and running two process pools side by side
just makes both slower.

Every state change and every settled job appends a monotonically
numbered event to the job's event log and wakes waiters on the
queue-wide condition; the HTTP event stream is "replay the log from
seq N, then block for more" -- late subscribers see the full history,
and there is no per-subscriber state server-side.

Drain (SIGTERM) is cooperative and crash-safe by construction: the
stop event is threaded into the running batch's supervisor, which
stops dispatching new job families, lets in-flight families finish and
journal, and returns a partial report.  Still-queued jobs flip to
``DRAINED`` without running.  Because every settled job is journaled,
resubmitting a drained batch with ``resume=True`` replays only the
remainder (see :mod:`repro.farm.supervise`).
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .. import api
from ..obs import MetricsRegistry

__all__ = ["ServeJob", "JobQueue"]


class ServeJob:
    """One submitted batch and everything observable about it.

    Mutable on purpose (the dispatcher and progress callbacks write,
    handler threads read); every mutation happens under the owning
    queue's lock, and readers snapshot via :meth:`status` /
    :meth:`events_since` rather than touching fields directly.
    """

    def __init__(self, job_id: str, tenant: str, request: api.ExplainRequest) -> None:
        self.id = job_id
        self.tenant = tenant
        self.request = request
        self.state = api.STATE_QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.report: Optional[api.BatchReport] = None
        self.exit_code: Optional[int] = None
        #: Settled-job tallies, updated live by the progress callback.
        self.counts: Dict[str, int] = {
            "settled": 0, "ok": 0, "degraded": 0, "failed": 0,
            "quarantined": 0, "cached": 0,
        }
        self.total = 0
        self.events: List[Dict[str, object]] = []

    # The queue calls these with its lock held. -------------------------

    def _event(self, kind: str, **payload: object) -> None:
        self.events.append({"seq": len(self.events), "event": kind, **payload})

    def _tally(self, result) -> None:
        self.counts["settled"] += 1
        if result.ok:
            self.counts["ok"] += 1
        if result.degraded:
            self.counts["degraded"] += 1
        if result.status == "ERROR":
            self.counts["failed"] += 1
        if result.quarantined:
            self.counts["quarantined"] += 1
        if result.cached:
            self.counts["cached"] += 1

    # -------------------------------------------------------------------

    def status(self) -> api.JobStatus:
        """A consistent snapshot (call via :meth:`JobQueue.status`)."""
        return api.JobStatus(
            id=self.id,
            state=self.state,
            tenant=self.tenant,
            scenario=self.request.name,
            total=self.total,
            settled=self.counts["settled"],
            ok=self.counts["ok"],
            degraded=self.counts["degraded"],
            failed=self.counts["failed"],
            quarantined=self.counts["quarantined"],
            cached=self.counts["cached"],
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
            exit_code=self.exit_code,
        )


class JobQueue:
    """FIFO of batches plus the dispatcher thread that runs them.

    ``runner`` defaults to :func:`repro.api.explain_batch` and is
    injectable so queue tests exercise the machine without solving
    anything.  ``cache_dir`` is the server's shared artifact store:
    requests that do not opt out of caching are rewritten onto it, so
    every batch of the process hits one store.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        runner: Optional[Callable[..., api.BatchReport]] = None,
    ) -> None:
        self.cache_dir = cache_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._runner = runner if runner is not None else api.explain_batch
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, ServeJob] = {}
        self._pending: Deque[ServeJob] = deque()
        self._stop = threading.Event()
        self._drained = threading.Event()
        self._serial = 0
        self._dispatcher = threading.Thread(
            target=self._run, name="repro-serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- submission ----------------------------------------------------

    def _shape(self, request: api.ExplainRequest) -> api.ExplainRequest:
        from dataclasses import replace

        if not request.no_cache and self.cache_dir is not None:
            if request.cache_dir != self.cache_dir:
                request = replace(request, cache_dir=self.cache_dir)
        return request

    def submit(self, request: api.ExplainRequest, tenant: str = "public") -> ServeJob:
        """Enqueue one validated request; returns its job record."""
        request = self._shape(request)
        with self._wake:
            if self._stop.is_set():
                raise RuntimeError("server is draining; not accepting work")
            self._serial += 1
            job = ServeJob(f"job-{self._serial:06d}", tenant, request)
            job._event("queued", tenant=tenant, scenario=request.name)
            self._jobs[job.id] = job
            self._pending.append(job)
            self.metrics.count("serve.jobs.submitted")
            self._wake.notify_all()
            return job

    # -- read side -----------------------------------------------------

    def get(self, job_id: str) -> Optional[ServeJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> Optional[api.JobStatus]:
        with self._lock:
            job = self._jobs.get(job_id)
            return job.status() if job is not None else None

    def jobs(self) -> List[api.JobStatus]:
        with self._lock:
            return [job.status() for job in self._jobs.values()]

    def events_since(
        self,
        job_id: str,
        seq: int,
        timeout: Optional[float] = None,
    ) -> List[Dict[str, object]]:
        """Events of ``job_id`` with ``seq`` and up, blocking for news.

        Returns an empty list only when the job is already terminal and
        has no events past ``seq`` (the stream's end), or on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            job = self._jobs.get(job_id)
            if job is None:
                return []
            while True:
                if len(job.events) > seq:
                    return [dict(event) for event in job.events[seq:]]
                if job.state not in (api.STATE_QUEUED, api.STATE_RUNNING):
                    return []
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return []
                self._wake.wait(remaining)

    # -- dispatcher ----------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._stop.is_set():
                    self._wake.wait()
                if self._stop.is_set():
                    for job in self._pending:
                        job.state = api.STATE_DRAINED
                        job.finished_at = time.time()
                        job._event("drained")
                    self._pending.clear()
                    self._wake.notify_all()
                    self._drained.set()
                    return
                job = self._pending.popleft()
                job.state = api.STATE_RUNNING
                job.started_at = time.time()
                job._event("started")
                self._wake.notify_all()
            self._execute(job)

    def _progress(self, job: ServeJob):
        def on_settled(result) -> None:
            with self._wake:
                job._tally(result)
                job._event(
                    "settled",
                    job=result.job.job_id,
                    status=result.status,
                    cached=result.cached,
                    attempts=result.attempts,
                )
                self._wake.notify_all()

        return on_settled

    def _execute(self, job: ServeJob) -> None:
        try:
            report = self._runner(
                job.request, progress=self._progress(job), stop=self._stop
            )
        except Exception as exc:  # noqa: BLE001 - the job absorbs it
            with self._wake:
                job.state = api.STATE_FAILED
                job.finished_at = time.time()
                job.error = f"{type(exc).__name__}: {exc}"
                job._event("failed", error=job.error)
                self.metrics.count("serve.jobs.failed")
                self._wake.notify_all()
            traceback.print_exc()
            return
        with self._wake:
            job.report = report
            job.total = len(report.results)
            drained = self._stop.is_set() and report.document.get(
                "counters", {}
            ).get("farm.supervise.drained", 0)
            job.state = api.STATE_DRAINED if drained else api.STATE_DONE
            job.finished_at = time.time()
            job.exit_code = report.exit_code(
                timeout=job.request.timeout, budget=job.request.budget
            )
            job._event(
                "finished",
                state=job.state,
                exit_code=job.exit_code,
                total=job.total,
            )
            self.metrics.count("serve.jobs.completed")
            counters = report.document.get("counters")
            if isinstance(counters, dict):
                for name, value in counters.items():
                    if isinstance(value, int):
                        self.metrics.count(name, value)
            self._wake.notify_all()

    # -- shutdown ------------------------------------------------------

    def drain(self, timeout: float = 60.0) -> bool:
        """Stop accepting and dispatching; wait for the queue to settle.

        The running batch (if any) sees the stop event through its
        supervisor and returns after its in-flight families journal;
        queued batches flip to ``DRAINED``.  Returns whether the
        dispatcher wound down within ``timeout``.
        """
        with self._wake:
            self._stop.set()
            self._wake.notify_all()
        self._dispatcher.join(timeout)
        return not self._dispatcher.is_alive()
