"""repro.serve: explanation-as-a-service over the farm.

A stdlib-only HTTP layer (:mod:`http.server`, no new dependencies)
exposing the batch-explanation pipeline as a long-running service:

* :mod:`repro.serve.server` -- the routes (``POST /v1/jobs``, status,
  byte-exact result documents, a chunked progress-event stream,
  ``/v1/healthz``, ``/v1/metrics``) and graceful SIGTERM drain;
* :mod:`repro.serve.queue` -- the job machine: per-tenant queues
  drained by a pool of runner threads under deficit-weighted
  round-robin fair scheduling, optionally onto a shared warm
  :class:`~repro.farm.fleet.WorkerFleet`, with a monotonically
  numbered per-job event log for streaming and a TTL/max-completed
  retention policy for finished jobs;
* :mod:`repro.serve.tenants` -- admission control: per-tenant token
  buckets (429 + ``Retry-After``), request shaping onto per-tenant
  worker/budget/timeout caps, and fair-share scheduler weights.

The wire vocabulary is entirely :mod:`repro.api` (requests, statuses)
plus :mod:`repro.farm.report` (result documents), so a served batch is
byte-identical to ``explain-all --json`` on the same cache.  The CLI
front-end is ``python -m repro.cli serve``; see ``docs/service.md``.
"""

from .queue import JobQueue, RetentionPolicy, ServeJob
from .server import ExplainHandler, ServeApp, serve_forever
from .tenants import (
    TENANTS_SCHEMA,
    TenantBook,
    TenantConfigError,
    TenantPolicy,
    TokenBucket,
)

__all__ = [
    "JobQueue",
    "RetentionPolicy",
    "ServeJob",
    "ServeApp",
    "ExplainHandler",
    "serve_forever",
    "TenantBook",
    "TenantPolicy",
    "TokenBucket",
    "TenantConfigError",
    "TENANTS_SCHEMA",
]
