"""The HTTP front door: stdlib ``http.server`` over the job queue.

Explanation-as-a-service, with the same contract as the CLI::

    POST /v1/jobs               submit a batch (repro-api-request/1 body)
    GET  /v1/jobs               list job statuses
    GET  /v1/jobs/{id}          one job's status (repro-api-status/1)
    GET  /v1/jobs/{id}/result   the repro-farm-report/2 document
    GET  /v1/jobs/{id}/events   chunked stream of progress events
    GET  /v1/healthz            liveness + queue depth
    GET  /v1/metrics            Prometheus text exposition

Design constraints this module answers to:

* **No new dependencies.**  :class:`ThreadingHTTPServer` gives one
  thread per connection; the event stream is hand-rolled chunked
  transfer encoding (one JSON object per chunk, newline-terminated).
* **Byte-identical results.**  ``GET .../result`` returns exactly the
  bytes ``explain-all --json`` would write for the same batch on the
  same cache (:func:`repro.farm.report.dump_document` is the single
  serializer), so clients can diff server output against CLI output.
* **Tenancy at the edge.**  The handler resolves the tenant
  (``X-Tenant`` header), asks the :class:`~repro.serve.tenants.TenantBook`
  for admission (429 + ``Retry-After`` on an empty bucket) and shapes
  the request to the tenant's caps before it ever reaches the queue.
* **Graceful drain.**  SIGTERM/SIGINT set the queue's stop event: the
  running batch journals its in-flight families and returns, queued
  batches flip to ``DRAINED``, the listener closes.  A resubmission
  with ``resume=true`` on the same cache replays only the remainder.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .. import api
from ..farm.fleet import WorkerFleet
from ..obs import METRICS_CONTENT_TYPE, MetricsRegistry, render_metrics
from .queue import JobQueue, RetentionPolicy
from .tenants import TenantBook

__all__ = ["ServeApp", "ExplainHandler", "serve_forever"]

_MAX_BODY = 8 * 1024 * 1024
_JSON = "application/json"

#: Default long-poll length for the ``/events`` stream (seconds); each
#: expiry emits a blank-line keep-alive chunk so client disconnects
#: surface promptly instead of parking the handler thread.
DEFAULT_EVENT_POLL_S = 10.0


class ServeApp:
    """Everything the handler threads share: queue, tenants, metrics.

    ``fleet_workers`` > 0 spins up a process :class:`WorkerFleet` at
    boot that every batch executes on (warm across batches);
    ``concurrency`` sets how many batches run at once under the
    queue's fair-share scheduler; ``retention`` bounds finished-job
    memory; ``event_poll_s`` is the ``/events`` long-poll length.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        tenants: Optional[TenantBook] = None,
        metrics: Optional[MetricsRegistry] = None,
        runner=None,
        fleet_workers: int = 0,
        concurrency: int = 1,
        retention: Optional[RetentionPolicy] = None,
        event_poll_s: float = DEFAULT_EVENT_POLL_S,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.event_poll_s = max(0.05, float(event_poll_s))
        self.fleet = (
            WorkerFleet(fleet_workers, metrics=self.metrics)
            if fleet_workers > 0
            else None
        )
        self.tenants = tenants if tenants is not None else TenantBook()
        self.queue = JobQueue(
            cache_dir=cache_dir, metrics=self.metrics, runner=runner,
            tenants=self.tenants, concurrency=concurrency,
            fleet=self.fleet, retention=retention,
        )
        self.draining = threading.Event()

    def drain(self, timeout: float = 60.0) -> bool:
        self.draining.set()
        drained = self.queue.drain(timeout)
        if self.fleet is not None:
            self.fleet.close()
        return drained


class ExplainHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` onto the shared :class:`ServeApp`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    #: Quiet by default; the CLI flips this on under ``-v``.
    verbose = False

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # -- plumbing ------------------------------------------------------

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str = _JSON,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        code: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(code, body, headers=headers)

    def _error(self, code: int, message: str, **extra: object) -> None:
        self._send_json(code, {"error": message, **extra})

    def _tenant(self) -> str:
        return self.headers.get("X-Tenant", "public").strip() or "public"

    def _read_body(self) -> Optional[bytes]:
        length = self.headers.get("Content-Length")
        try:
            size = int(length) if length is not None else 0
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if size <= 0:
            self._error(400, "request body required")
            return None
        if size > _MAX_BODY:
            self._error(413, f"body exceeds {_MAX_BODY} bytes")
            return None
        return self.rfile.read(size)

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0].rstrip("/")
        return tuple(part for part in path.split("/") if part)

    def _query(self) -> Dict[str, str]:
        if "?" not in self.path:
            return {}
        pairs = {}
        for chunk in self.path.split("?", 1)[1].split("&"):
            if "=" in chunk:
                key, value = chunk.split("=", 1)
                pairs[key] = value
        return pairs

    # -- verbs ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self.app.metrics.count("serve.http.requests")
        route = self._route()
        if route != ("v1", "jobs"):
            self._error(404, f"no such resource: {self.path}")
            return
        tenant = self._tenant()
        admitted, wait = self.app.tenants.admit(tenant)
        if not admitted:
            retry_after = max(1, int(wait + 0.999))
            self.app.metrics.count("serve.http.rate_limited")
            self._send_json(
                429,
                {"error": "rate limit exceeded", "tenant": tenant,
                 "retry_after_s": retry_after},
                headers={"Retry-After": str(retry_after)},
            )
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self._error(400, f"malformed JSON body: {exc}")
            return
        if (
            isinstance(payload, dict)
            and payload.get("schema") not in (None, api.API_REQUEST_SCHEMA)
        ):
            self._error(400, f"expected schema {api.API_REQUEST_SCHEMA!r}")
            return
        try:
            request = api.ExplainRequest.from_payload(payload)
        except api.ApiError as exc:
            self._error(400, str(exc))
            return
        request = self.app.tenants.shape(tenant, request)
        try:
            job = self.app.queue.submit(request, tenant=tenant)
        except RuntimeError as exc:
            self._error(503, str(exc))
            return
        self._send_json(
            202, {"id": job.id, "state": job.state, "tenant": tenant}
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self.app.metrics.count("serve.http.requests")
        route = self._route()
        if route == ("v1", "healthz"):
            self._health()
        elif route == ("v1", "metrics"):
            self._metrics()
        elif route == ("v1", "jobs"):
            self._send_json(
                200,
                {"jobs": [status.payload() for status in self.app.queue.jobs()]},
            )
        elif len(route) == 3 and route[:2] == ("v1", "jobs"):
            self._job_status(route[2])
        elif len(route) == 4 and route[:2] == ("v1", "jobs"):
            if route[3] == "result":
                self._job_result(route[2])
            elif route[3] == "events":
                self._job_events(route[2])
            else:
                self._error(404, f"no such resource: {self.path}")
        else:
            self._error(404, f"no such resource: {self.path}")

    # -- GET handlers --------------------------------------------------

    def _health(self) -> None:
        statuses = self.app.queue.jobs()
        self._send_json(
            200,
            {
                "ok": True,
                "draining": self.app.draining.is_set(),
                "jobs": len(statuses),
                "queued": sum(1 for s in statuses if s.state == api.STATE_QUEUED),
                "running": sum(
                    1 for s in statuses if s.state == api.STATE_RUNNING
                ),
            },
        )

    def _metrics(self) -> None:
        if self.app.fleet is not None:
            self.app.fleet.observe_gauges(self.app.metrics)
        body = render_metrics(self.app.metrics).encode("utf-8")
        self._send(200, body, content_type=METRICS_CONTENT_TYPE)

    def _job_status(self, job_id: str) -> None:
        status = self.app.queue.status(job_id)
        if status is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._send_json(200, status.payload())

    def _job_result(self, job_id: str) -> None:
        job = self.app.queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        status = self.app.queue.status(job_id)
        assert status is not None
        if not status.terminal:
            self._error(409, f"job {job_id!r} is {status.state}, not finished")
            return
        if job.report is None:
            self._error(409, f"job {job_id!r} produced no report", state=job.state,
                        detail=job.error)
            return
        # The exact bytes `explain-all --json` writes for this batch.
        from ..farm.report import dump_document

        body = dump_document(dict(job.report.document)).encode("utf-8")
        self._send(200, body)

    def _job_events(self, job_id: str) -> None:
        if self.app.queue.get(job_id) is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        seq = 0
        try:
            while True:
                events = self.app.queue.events_since(
                    job_id, seq, timeout=self.app.event_poll_s
                )
                if not events:
                    status = self.app.queue.status(job_id)
                    if status is None or status.terminal:
                        break
                    # Keep-alive on poll expiry: a blank ndjson line
                    # (clients skip empty lines).  Writing is also how
                    # a vanished client surfaces -- the send raises and
                    # frees this thread instead of parking it through
                    # a drain.
                    self._chunk(b"\n")
                    continue
                for event in events:
                    self._chunk(
                        (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                    )
                seq = events[-1]["seq"] + 1  # type: ignore[operator]
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away mid-stream; nothing to finalize
        try:
            # Terminating zero-length chunk.
            self.wfile.write(b"0\r\n\r\n")
        except OSError:
            pass

    def _chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: Event-stream handler threads may be parked in a 10s poll when
    #: the listener closes; don't block shutdown on them.
    block_on_close = False

    def __init__(self, address, handler, app: ServeApp) -> None:
        super().__init__(address, handler)
        self.app = app


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8421,
    cache_dir: Optional[str] = None,
    tenants: Optional[TenantBook] = None,
    verbose: bool = False,
    ready: Optional[threading.Event] = None,
    install_signals: bool = True,
    drain_timeout: float = 60.0,
    fleet_workers: int = 0,
    concurrency: int = 1,
    retention: Optional[RetentionPolicy] = None,
    event_poll_s: float = DEFAULT_EVENT_POLL_S,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Returns the process exit code: 0 after a clean drain, 1 when the
    drain timed out with work still in flight.
    """
    app = ServeApp(
        cache_dir=cache_dir, tenants=tenants,
        fleet_workers=fleet_workers, concurrency=concurrency,
        retention=retention, event_poll_s=event_poll_s,
    )
    handler = type("Handler", (ExplainHandler,), {"verbose": verbose})
    server = _Server((host, port), handler, app)

    def _shutdown(signum=None, frame=None) -> None:
        # Stop accepting, then let the queue wind down off-thread so
        # the signal handler returns promptly.
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    drained = app.drain(timeout=drain_timeout)
    return 0 if drained else 1
