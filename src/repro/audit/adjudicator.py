"""The adversarial check loop judging one subspecification.

The :class:`Adjudicator` pairs a deterministic seeded
:class:`~repro.audit.suite.AuditSuite` with the independent
:class:`~repro.audit.oracle.Oracle` and classifies the subspec:

``confirmed``
    Claim and ground truth agree on every resolvable probe.
``too-weak``
    The subspec accepts an assignment under which the network violates
    the requirement -- the explanation would bless a broken config.
``too-strong``
    The subspec rejects an assignment under which the network satisfies
    the requirement -- the explanation forbids a working config.
``unresolved``
    No disagreement was found, but some probes could not be evaluated
    (an interrupted encode, or selection state a non-converging
    assignment does not have).

A refutation carries a *minimized counterexample*: a deterministic
greedy walk moves the disagreeing assignment toward the nearest
agreeing reference one variable at a time, keeping each move only while
the disagreement persists, so reports show the smallest witness the
walk can reach rather than an arbitrary sampled point.

On refutation the adjudicator can feed the counterexample back into
the engine as a re-lift constraint (``relift=`` callable; see
:meth:`repro.explain.engine.ExplanationEngine.relift`) and re-audit the
corrected subspec, bounded by ``max_relifts``; a loop that converges
reports ``repaired=True``, one that does not keeps its refuted verdict
as an explicit degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.sketch import Hole
from ..explain.subspec import Subspecification
from ..obs import Instrumentation
from ..runtime import GOVERNED_ERRORS, Governor
from ..spec.ast import Specification
from .oracle import Oracle
from .suite import AssignmentKey, AuditCase, AuditSuite, generate_suite

__all__ = [
    "AUDIT_SCHEMA",
    "Adjudicator",
    "AuditReport",
    "Counterexample",
    "VERDICT_CONFIRMED",
    "VERDICT_TOO_STRONG",
    "VERDICT_TOO_WEAK",
    "VERDICT_UNRESOLVED",
]

#: Bumped whenever the audit artifact payload changes shape.
AUDIT_SCHEMA = "repro-audit/1"

VERDICT_CONFIRMED = "confirmed"
VERDICT_TOO_WEAK = "too-weak"
VERDICT_TOO_STRONG = "too-strong"
VERDICT_UNRESOLVED = "unresolved"

#: Verdicts that refute the subspecification outright.
REFUTED_VERDICTS = (VERDICT_TOO_WEAK, VERDICT_TOO_STRONG)


@dataclass(frozen=True)
class Counterexample:
    """A concrete disagreement between claim and ground truth."""

    values: AssignmentKey
    truth: bool
    claim: bool
    kind: str
    mutation: Optional[str] = None
    minimized: bool = False

    def render(self) -> str:
        body = ", ".join(f"{name}={text}" for name, text in self.values)
        if self.mutation is not None:
            body += f" [renumbered {self.mutation}]"
        if self.claim and not self.truth:
            account = "subspec accepts it, network violates the requirement"
        else:
            account = "subspec rejects it, network satisfies the requirement"
        return f"{body}: {account}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "assignment": [[name, text] for name, text in self.values],
            "truth": self.truth,
            "claim": self.claim,
            "kind": self.kind,
            "mutation": self.mutation,
            "minimized": self.minimized,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Counterexample":
        values = tuple(
            (str(name), str(text))
            for name, text in payload["assignment"]  # type: ignore[union-attr]
        )
        return cls(
            values=values,
            truth=bool(payload["truth"]),
            claim=bool(payload["claim"]),
            kind=str(payload["kind"]),
            mutation=(
                None
                if payload.get("mutation") is None
                else str(payload["mutation"])
            ),
            minimized=bool(payload.get("minimized", False)),
        )


@dataclass
class AuditReport:
    """The adjudicator's verdict on one subspecification."""

    verdict: str
    seed: int
    cases: int
    agreements: int
    disagreements: int
    unresolved: int
    space: int
    exhaustive: bool
    kinds: Dict[str, int] = field(default_factory=dict)
    counterexample: Optional[Counterexample] = None
    relifts: int = 0
    repaired: bool = False
    error: Optional[str] = None

    @property
    def refuted(self) -> bool:
        """Whether the final verdict refutes the subspecification."""
        return self.verdict in REFUTED_VERDICTS and not self.repaired

    @property
    def confirmed(self) -> bool:
        return self.verdict == VERDICT_CONFIRMED

    def summary(self) -> str:
        label = self.verdict.upper()
        if self.repaired:
            label += " (repaired by re-lift)"
        parts = [
            f"audit: {label}",
            f"{self.cases} cases"
            + (" (exhaustive)" if self.exhaustive else ""),
            f"seed {self.seed}",
        ]
        line = f"{parts[0]} ({parts[1]}, {parts[2]})"
        if self.counterexample is not None:
            line += f"\n  counterexample: {self.counterexample.render()}"
        if self.error is not None:
            line += f"\n  error: {self.error}"
        return line

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": AUDIT_SCHEMA,
            "verdict": self.verdict,
            "seed": self.seed,
            "cases": self.cases,
            "agreements": self.agreements,
            "disagreements": self.disagreements,
            "unresolved": self.unresolved,
            "space": self.space,
            "exhaustive": self.exhaustive,
            "kinds": dict(sorted(self.kinds.items())),
            "counterexample": (
                self.counterexample.to_dict()
                if self.counterexample is not None
                else None
            ),
            "relifts": self.relifts,
            "repaired": self.repaired,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "AuditReport":
        if payload.get("schema") != AUDIT_SCHEMA:
            raise ValueError(
                f"expected {AUDIT_SCHEMA}, got {payload.get('schema')!r}"
            )
        counterexample = payload.get("counterexample")
        return cls(
            verdict=str(payload["verdict"]),
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            cases=int(payload["cases"]),  # type: ignore[arg-type]
            agreements=int(payload["agreements"]),  # type: ignore[arg-type]
            disagreements=int(payload["disagreements"]),  # type: ignore[arg-type]
            unresolved=int(payload["unresolved"]),  # type: ignore[arg-type]
            space=int(payload["space"]),  # type: ignore[arg-type]
            exhaustive=bool(payload["exhaustive"]),
            kinds={
                str(kind): int(count)
                for kind, count in dict(payload.get("kinds") or {}).items()
            },
            counterexample=(
                Counterexample.from_dict(counterexample)  # type: ignore[arg-type]
                if counterexample is not None
                else None
            ),
            relifts=int(payload.get("relifts", 0)),  # type: ignore[arg-type]
            repaired=bool(payload.get("repaired", False)),
            error=(
                None
                if payload.get("error") is None
                else str(payload["error"])
            ),
        )


@dataclass
class _Round:
    """One audit pass over the suite for one subspec revision."""

    agreements: int = 0
    unresolved: int = 0
    too_weak: List[Counterexample] = field(default_factory=list)
    too_strong: List[Counterexample] = field(default_factory=list)
    reference: Optional[AuditCase] = None

    @property
    def disagreements(self) -> int:
        return len(self.too_weak) + len(self.too_strong)


#: Re-lift callback: (forced_acceptances, forced_rejections) -> the
#: corrected subspecification (see ``ExplanationEngine.relift``).
ReliftFn = Callable[
    [Set[AssignmentKey], Set[AssignmentKey]], Subspecification
]


class Adjudicator:
    """Runs the adversarial check loop for one explanation question."""

    def __init__(
        self,
        sketch: NetworkConfig,
        specification: Specification,
        holes: Mapping[str, Hole],
        device: str,
        requirement: Optional[str] = None,
        seed: int = 0,
        max_path_length: Optional[int] = None,
        link_cost=None,
        ibgp: bool = False,
        max_exhaustive: int = 64,
        samples: int = 24,
        environment_routers: Optional[Sequence[str]] = None,
        governor: Optional[Governor] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.device = device
        self.seed = seed
        self.holes = dict(holes)
        self.obs = obs
        self.max_exhaustive = max_exhaustive
        self.samples = samples
        if environment_routers is None:
            environment_routers = _default_environment_routers(sketch, device)
        self.environment_routers = tuple(environment_routers)
        self.oracle = Oracle(
            sketch,
            specification,
            holes,
            requirement=requirement,
            max_path_length=max_path_length,
            link_cost=link_cost,
            ibgp=ibgp,
            governor=governor,
        )

    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.obs is not None:
            self.obs.metrics.count(name, amount)

    def _suite(self, subspec: Subspecification) -> AuditSuite:
        def claim_of(assignment: Dict[str, object]) -> Optional[bool]:
            case = AuditCase(
                kind="probe",
                values=tuple(
                    sorted(
                        (name, str(value))
                        for name, value in assignment.items()
                    )
                ),
            )
            truth, env = self.oracle.truth(case)
            return self.oracle.claim(subspec, case, env)

        return generate_suite(
            self.holes,
            seed=self.seed,
            max_exhaustive=self.max_exhaustive,
            samples=self.samples,
            environment_routers=self.environment_routers,
            claim=claim_of,
        )

    def _check_case(
        self, subspec: Subspecification, case: AuditCase, round_: _Round
    ) -> None:
        truth, env = self.oracle.truth(case)
        claim = self.oracle.claim(subspec, case, env)
        if claim is None:
            round_.unresolved += 1
            return
        if bool(claim) == bool(truth):
            round_.agreements += 1
            if round_.reference is None and case.mutation is None:
                round_.reference = case
            return
        counterexample = Counterexample(
            values=case.values,
            truth=bool(truth),
            claim=bool(claim),
            kind=case.kind,
            mutation=case.mutation,
        )
        if claim and not truth:
            round_.too_weak.append(counterexample)
        else:
            round_.too_strong.append(counterexample)

    def _run_round(
        self, subspec: Subspecification, suite: AuditSuite
    ) -> _Round:
        round_ = _Round()
        for case in suite.cases:
            self._count("audit.cases")
            try:
                self._check_case(subspec, case, round_)
            except GOVERNED_ERRORS:
                round_.unresolved += 1
        return round_

    # ------------------------------------------------------------------

    def _minimize(
        self,
        subspec: Subspecification,
        counterexample: Counterexample,
        reference: Optional[AuditCase],
    ) -> Counterexample:
        """Greedy walk toward ``reference``, keeping each per-variable
        move only while claim and truth still disagree."""
        if reference is None or counterexample.mutation is not None:
            return counterexample
        current = dict(counterexample.values)
        target = dict(reference.values)

        def disagrees(values: Dict[str, str]) -> Optional[Counterexample]:
            case = AuditCase(
                kind=counterexample.kind,
                values=tuple(sorted(values.items())),
            )
            truth, env = self.oracle.truth(case)
            claim = self.oracle.claim(subspec, case, env)
            if claim is None or bool(claim) == bool(truth):
                return None
            return Counterexample(
                values=case.values,
                truth=bool(truth),
                claim=bool(claim),
                kind=counterexample.kind,
                minimized=True,
            )

        best: Counterexample = Counterexample(
            values=counterexample.values,
            truth=counterexample.truth,
            claim=counterexample.claim,
            kind=counterexample.kind,
            minimized=True,
        )
        for name in sorted(current):
            if current[name] == target.get(name, current[name]):
                continue
            trial = dict(current)
            trial[name] = target[name]
            witness = disagrees(trial)
            if witness is not None:
                current = trial
                best = witness
        return best

    # ------------------------------------------------------------------

    def check(self, subspec: Subspecification) -> AuditReport:
        """One audit pass: suite, replay, classify (no re-lift)."""
        return self.adjudicate(subspec, relift=None, max_relifts=0)

    def adjudicate(
        self,
        subspec: Subspecification,
        relift: Optional[ReliftFn] = None,
        max_relifts: int = 2,
    ) -> AuditReport:
        """The full loop: audit, and on refutation feed counterexamples
        back through ``relift`` (bounded) before re-auditing."""
        self._count("audit.suites")
        suite = self._suite(subspec)
        forced_acceptances: Set[AssignmentKey] = set()
        forced_rejections: Set[AssignmentKey] = set()
        relifts = 0
        first_refuted: Optional[AuditReport] = None
        current = subspec
        while True:
            round_ = self._run_round(current, suite)
            report = self._classify(round_, suite, current)
            if report.refuted and first_refuted is None:
                first_refuted = report
            if not report.refuted or relift is None or relifts >= max_relifts:
                break
            # Feed every disagreement back as a projection correction:
            # a too-weak witness must be rejected, a too-strong witness
            # must be accepted.
            for counterexample in round_.too_weak:
                if counterexample.mutation is None:
                    forced_rejections.add(counterexample.values)
            for counterexample in round_.too_strong:
                if counterexample.mutation is None:
                    forced_acceptances.add(counterexample.values)
            if not forced_acceptances and not forced_rejections:
                break
            relifts += 1
            self._count("audit.relifts")
            try:
                current = relift(forced_acceptances, forced_rejections)
            except GOVERNED_ERRORS as exc:
                report.error = f"re-lift interrupted: {exc}"
                break
        if first_refuted is not None and report.confirmed:
            # The re-lift loop converged: keep the refuting verdict and
            # its witness for the record, but mark the subspec repaired.
            report.verdict = first_refuted.verdict
            report.repaired = True
            report.counterexample = first_refuted.counterexample
        report.relifts = relifts
        self._count(f"audit.{report.verdict.replace('-', '_')}")
        if report.repaired:
            self._count("audit.repaired")
        if report.refuted:
            self._count(
                "audit.refuted."
                + report.verdict.replace("too-", "too_").replace("-", "_")
            )
        return report

    def _classify(
        self, round_: _Round, suite: AuditSuite, subspec: Subspecification
    ) -> AuditReport:
        counterexample: Optional[Counterexample] = None
        if round_.too_weak:
            verdict = VERDICT_TOO_WEAK
            counterexample = self._minimize(
                subspec, round_.too_weak[0], round_.reference
            )
        elif round_.too_strong:
            verdict = VERDICT_TOO_STRONG
            counterexample = self._minimize(
                subspec, round_.too_strong[0], round_.reference
            )
        elif round_.unresolved:
            verdict = VERDICT_UNRESOLVED
        else:
            verdict = VERDICT_CONFIRMED
        return AuditReport(
            verdict=verdict,
            seed=suite.seed,
            cases=len(suite.cases),
            agreements=round_.agreements,
            disagreements=round_.disagreements,
            unresolved=round_.unresolved,
            space=suite.space,
            exhaustive=suite.exhaustive,
            kinds=suite.kinds(),
            counterexample=counterexample,
        )


def _default_environment_routers(
    sketch: NetworkConfig, device: str, cap: int = 2
) -> Tuple[str, ...]:
    """Routers other than the device with route-map lines attached --
    the neighbor state an explanation's read-set may cover."""
    routers: List[str] = []
    for name in sorted(sketch.topology.router_names):
        if name == device:
            continue
        router_config = sketch.router_config(name)
        if any(
            routemap is not None and routemap.lines
            for routemap in (
                router_config.get_map(direction, neighbor)
                for direction, neighbor in router_config.sessions()
            )
        ):
            routers.append(name)
    return tuple(routers[:cap])
