"""Deterministic audit suites probing a subspecification's boundary.

A suite is a set of :class:`AuditCase` probes over the symbolized hole
space plus read-set-guided *environment* mutations of neighbor state:

* ``exhaustive`` -- every hole assignment, when the space is small
  enough to enumerate (the case-study scenarios always are);
* ``sampled`` -- seeded uniform samples of a larger space, stratified
  toward both sides of the claimed boundary when a claim predicate is
  supplied;
* ``boundary`` -- Hamming-1 neighbors of the sampled assignments, the
  near-boundary probes most likely to expose an off-by-one lift;
* ``environment`` -- selected assignments replayed against a
  behavior-preserving mutation of another router's configuration
  (route-map lines renumbered), checking that the explanation does not
  silently depend on cosmetic neighbor state.

Generation is a pure function of its arguments: the same holes, seed
and knobs always produce the same suite, so a refutation in a report
is reproducible from the recorded seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.routemap import RouteMap
from ..bgp.sketch import Hole

__all__ = [
    "AuditCase",
    "AuditSuite",
    "generate_suite",
    "renumber_routemaps",
]

#: Case kinds, in generation order.
KIND_EXHAUSTIVE = "exhaustive"
KIND_SAMPLED = "sampled"
KIND_BOUNDARY = "boundary"
KIND_ENVIRONMENT = "environment"

AssignmentKey = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class AuditCase:
    """One probe: a hole assignment, optionally under a mutated peer.

    ``values`` is the canonical (name, str(value)) tuple -- the same
    key form the projection and lifting stages use -- and ``mutation``
    names the router whose route-maps are renumbered for
    ``environment`` cases (``None`` otherwise).
    """

    kind: str
    values: AssignmentKey
    mutation: Optional[str] = None

    @property
    def key(self) -> AssignmentKey:
        return self.values

    def assignment(self, holes: Mapping[str, Hole]) -> Dict[str, object]:
        """The assignment realized over the holes' domain objects."""
        realized: Dict[str, object] = {}
        for name, text in self.values:
            hole = holes[name]
            for candidate in hole.domain:
                if str(candidate) == text:
                    realized[name] = candidate
                    break
            else:
                raise ValueError(
                    f"value {text!r} outside domain of hole {name}"
                )
        return realized

    def render(self) -> str:
        body = ", ".join(f"{name}={text}" for name, text in self.values)
        if self.mutation is not None:
            return f"{body} [renumbered {self.mutation}]"
        return body


@dataclass(frozen=True)
class AuditSuite:
    """A deterministic, seeded collection of audit cases."""

    seed: int
    space: int
    exhaustive: bool
    cases: Tuple[AuditCase, ...]

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for case in self.cases:
            counts[case.kind] = counts.get(case.kind, 0) + 1
        return counts


def _key_of(names: Sequence[str], assignment: Mapping[str, object]) -> AssignmentKey:
    return tuple((name, str(assignment[name])) for name in names)


def _decode(
    index: int, names: Sequence[str], domains: Mapping[str, Sequence[object]]
) -> Dict[str, object]:
    assignment: Dict[str, object] = {}
    for name in names:
        domain = domains[name]
        index, position = divmod(index, len(domain))
        assignment[name] = domain[position]
    return assignment


def _iter_space(names: Sequence[str], domains: Mapping[str, Sequence[object]]):
    import itertools

    for combo in itertools.product(*[domains[name] for name in names]):
        yield dict(zip(names, combo))


def generate_suite(
    holes: Mapping[str, Hole],
    seed: int = 0,
    max_exhaustive: int = 64,
    samples: int = 24,
    boundary_per_sample: int = 2,
    environment_routers: Sequence[str] = (),
    environment_cases: int = 4,
    claim: Optional[Callable[[Dict[str, object]], Optional[bool]]] = None,
) -> AuditSuite:
    """Generate the audit suite for one symbolized hole space.

    When the space has at most ``max_exhaustive`` assignments the suite
    enumerates all of them; otherwise it draws ``samples`` distinct
    seeded samples plus ``boundary_per_sample`` Hamming-1 neighbors
    each.  A ``claim`` predicate (the subspec's own acceptance
    predicate) stratifies sampling: extra draws are spent until both a
    claimed-satisfying and a claimed-violating assignment are present,
    so the suite always probes both sides of the claimed boundary when
    both sides exist among the draws.

    ``environment_routers`` adds, per router, up to
    ``environment_cases`` replays of the leading assignments under a
    renumbered copy of that router's route-maps.
    """
    names = sorted(holes)
    domains: Dict[str, List[object]] = {
        name: list(holes[name].domain) for name in names
    }
    space = 1
    for name in names:
        space *= len(domains[name])

    cases: List[AuditCase] = []
    seen: set = set()

    def add(kind: str, assignment: Mapping[str, object], mutation: Optional[str] = None) -> bool:
        key = (_key_of(names, assignment), mutation)
        if key in seen:
            return False
        seen.add(key)
        cases.append(AuditCase(kind=kind, values=key[0], mutation=mutation))
        return True

    exhaustive = space <= max_exhaustive
    if exhaustive:
        for assignment in _iter_space(names, domains):
            add(KIND_EXHAUSTIVE, assignment)
    else:
        rng = random.Random(seed)
        drawn = 0
        sides = {True: 0, False: 0}
        attempts = 0
        max_attempts = max(4 * samples, 16)
        while drawn < samples and attempts < max_attempts:
            attempts += 1
            assignment = _decode(rng.randrange(space), names, domains)
            if not add(KIND_SAMPLED, assignment):
                continue
            drawn += 1
            if claim is not None:
                verdict = claim(dict(assignment))
                if verdict is not None:
                    sides[bool(verdict)] += 1
        if claim is not None and 0 in sides.values():
            # Stratify: spend bounded extra draws looking for the
            # missing side of the claimed boundary.
            missing = True if sides[True] == 0 else False
            for _ in range(max_attempts):
                assignment = _decode(rng.randrange(space), names, domains)
                verdict = claim(dict(assignment))
                if verdict is not None and bool(verdict) == missing:
                    add(KIND_SAMPLED, assignment)
                    break
        sampled = [case for case in cases if case.kind == KIND_SAMPLED]
        for case in sampled:
            base = case.assignment(holes)
            for _ in range(boundary_per_sample):
                name = names[rng.randrange(len(names))]
                domain = domains[name]
                if len(domain) < 2:
                    continue
                alternatives = [
                    value for value in domain if str(value) != str(base[name])
                ]
                neighbor = dict(base)
                neighbor[name] = alternatives[rng.randrange(len(alternatives))]
                add(KIND_BOUNDARY, neighbor)

    base_keys = [case for case in cases if case.mutation is None]
    for router in sorted(environment_routers):
        for case in base_keys[: max(0, environment_cases)]:
            add(KIND_ENVIRONMENT, case.assignment(holes), mutation=router)

    return AuditSuite(
        seed=seed, space=space, exhaustive=exhaustive, cases=tuple(cases)
    )


def renumber_routemaps(config: NetworkConfig, router: str) -> NetworkConfig:
    """A behavior-preserving mutation of one router's configuration.

    Every route-map line of ``router`` keeps its relative order but gets
    a new sequence number (``seq * 10``).  First-match semantics only
    depend on the order, so simulation outcomes -- and therefore every
    ground-truth verdict -- must be unchanged; an explanation whose
    verdict flips under this mutation depends on cosmetic neighbor
    state it never should have read.
    """
    mutated = config.copy()
    router_config = mutated.router_config(router)
    for direction, neighbor in router_config.sessions():
        routemap = router_config.get_map(direction, neighbor)
        if routemap is None or not routemap.lines:
            continue
        lines = tuple(
            replace(line, seq=line.seq * 10) for line in routemap.lines
        )
        router_config.set_map(
            direction, neighbor, RouteMap(routemap.name, lines)
        )
    return mutated
