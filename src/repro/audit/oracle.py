"""The audit oracle: ground truth independent of the lifting pipeline.

For every probe the oracle recomputes, from scratch, both sides of the
agreement check:

* **truth** -- fill the symbolized sketch with the probe's assignment,
  run the concrete control-plane simulation, and evaluate the global
  requirement terms of a *fresh* synthesizer encoding under the
  simulated selection.  This never touches the engine's cached seed,
  projection or lift artifacts, so a bug anywhere in that pipeline
  cannot leak into the verdict it is being judged by.
* **claim** -- what the subspecification under audit says about the
  assignment: the conjunction of its lifted statements (each re-encoded
  here with the synthesizer encoder, not the lifting stage's cached
  terms), or its low-level constraint when it was not lifted.

Environment-mutation probes get their own fresh encoding of the
mutated network, so truth and claim are always evaluated against the
same world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.simulation import ConvergenceError, simulate
from ..bgp.sketch import Hole
from ..explain.seed import SeedSpecification, extract_seed
from ..explain.subspec import Subspecification
from ..runtime import Governor, ReproError
from ..smt import And, Term
from ..spec.ast import RequirementBlock, Specification, Statement
from ..synthesis.encoder import Encoder
from .suite import AuditCase, renumber_routemaps

__all__ = ["Oracle"]


@dataclass
class _Variant:
    """One world the oracle evaluates in: a (possibly mutated) sketch
    plus its fresh seed encoding and ground requirement term."""

    sketch: NetworkConfig
    seed: SeedSpecification
    requirement: Term


class Oracle:
    """Recomputes truth and claim verdicts for audit probes.

    ``sketch``/``holes`` are the job's own symbolization (the claim is
    about exactly these variables); ``specification`` is the *full*
    specification, restricted here to ``requirement`` just as the
    engine restricts it -- but through a fresh encoding, never the
    engine's artifacts.
    """

    def __init__(
        self,
        sketch: NetworkConfig,
        specification: Specification,
        holes: Mapping[str, Hole],
        requirement: Optional[str] = None,
        max_path_length: Optional[int] = None,
        link_cost=None,
        ibgp: bool = False,
        governor: Optional[Governor] = None,
    ) -> None:
        self.sketch = sketch
        self.spec = (
            specification.restricted_to(requirement)
            if requirement is not None
            else specification
        )
        self.full_spec = specification
        self.holes = dict(holes)
        self.max_path_length = max_path_length
        self.link_cost = link_cost
        self.ibgp = ibgp
        self.governor = governor
        self._variants: Dict[Optional[str], _Variant] = {}
        self._statement_terms: Dict[Tuple[Optional[str], str], Optional[Term]] = {}

    # ------------------------------------------------------------------

    def _variant(self, mutation: Optional[str]) -> _Variant:
        variant = self._variants.get(mutation)
        if variant is None:
            sketch = (
                renumber_routemaps(self.sketch, mutation)
                if mutation is not None
                else self.sketch
            )
            seed = extract_seed(
                sketch,
                self.spec,
                self.holes,
                self.max_path_length,
                self.link_cost,
                self.ibgp,
                governor=self.governor,
            )
            terms = []
            for name, group in seed.encoding.groups.items():
                if name.startswith("requirement:"):
                    terms.extend(group)
            variant = _Variant(
                sketch=sketch, seed=seed, requirement=And(*terms)
            )
            self._variants[mutation] = variant
        return variant

    # ------------------------------------------------------------------

    def truth(
        self, case: AuditCase
    ) -> Tuple[bool, Optional[Dict[str, object]]]:
        """(does the network satisfy the requirement?, evaluation env).

        Mirrors the projection stage's classification semantics -- fill,
        simulate, evaluate the ground requirement -- but against this
        oracle's own fresh encoding.  Non-converging assignments
        violate the requirement and carry no environment.
        """
        variant = self._variant(case.mutation)
        assignment = case.assignment(self.holes)
        filled = variant.sketch.fill(assignment)
        try:
            outcome = simulate(
                filled,
                link_cost=variant.seed.encoding.link_cost,
                ibgp=variant.seed.encoding.ibgp,
                governor=self.governor,
            )
        except ConvergenceError:
            return False, None
        env = self._hole_env(variant, assignment)
        for key, variable in variant.seed.encoding.best_vars.items():
            candidate = _candidate_of(key)
            selected = outcome.best(candidate.router, candidate.prefix)
            env[variable.name] = (
                selected is not None
                and selected.path == candidate.path.hops
            )
        return bool(variant.requirement.evaluate(env)), env

    def _hole_env(
        self, variant: _Variant, assignment: Mapping[str, object]
    ) -> Dict[str, object]:
        env: Dict[str, object] = {}
        for name, value in assignment.items():
            variable = variant.seed.encoding.holes.variable(name)
            env[name] = value if variable.sort.is_int() else str(value)
        return env

    # ------------------------------------------------------------------

    def claim(
        self,
        subspec: Subspecification,
        case: AuditCase,
        env: Optional[Dict[str, object]],
    ) -> Optional[bool]:
        """What the subspecification says about the probe's assignment.

        ``None`` means the claim could not be evaluated for this case
        (a statement failed to encode, or referenced selection state a
        non-converging assignment does not have) -- counted as
        *unresolved*, never as agreement.
        """
        variant = self._variant(case.mutation)
        if subspec.lifted and subspec.statements:
            if env is None:
                # No selection state to evaluate statements under; the
                # low-level constraint (hole variables only) is the
                # claim's verdict on non-converging assignments.
                return self._low_level_claim(subspec, variant, case)
            for statement in subspec.statements:
                term = self._statement_term(statement, variant, case.mutation)
                if term is None:
                    return None
                try:
                    if not bool(term.evaluate(env)):
                        return False
                except KeyError:
                    return None
            return True
        if subspec.lifted:
            # Empty subspecification: the device may do anything.
            return True
        return self._low_level_claim(subspec, variant, case, env)

    def _low_level_claim(
        self,
        subspec: Subspecification,
        variant: _Variant,
        case: AuditCase,
        env: Optional[Dict[str, object]] = None,
    ) -> Optional[bool]:
        hole_env = self._hole_env(variant, case.assignment(self.holes))
        try:
            return bool(subspec.low_level.evaluate(hole_env))
        except KeyError:
            pass
        if env is not None:
            try:
                return bool(subspec.low_level.evaluate(env))
            except KeyError:
                pass
        return None

    def _statement_term(
        self, statement: Statement, variant: _Variant, mutation: Optional[str]
    ) -> Optional[Term]:
        """The filter-level encoding of one lifted statement, memoized
        per (mutation, statement) -- a fresh encode, not the lifting
        stage's cached term."""
        cache_key = (mutation, str(statement))
        if cache_key in self._statement_terms:
            return self._statement_terms[cache_key]
        block = RequirementBlock("audit", (statement,))
        local_spec = Specification((block,), self.full_spec.managed)
        term: Optional[Term]
        try:
            encoder = Encoder(
                variant.sketch,
                local_spec,
                variant.seed.encoding.space.max_path_length,
                variant.seed.encoding.link_cost,
                ibgp=variant.seed.encoding.ibgp,
                governor=self.governor,
            )
            term = encoder.encode(include_selection=False).constraint
        except ReproError:
            raise
        except Exception:
            term = None
        self._statement_terms[cache_key] = term
        return term


def _candidate_of(key: str):
    from ..synthesis.space import Candidate
    from ..topology.paths import Path
    from ..topology.prefixes import Prefix

    prefix_text, hops_text = key.split("|", 1)
    return Candidate(Prefix(prefix_text), Path(tuple(hops_text.split("."))))
