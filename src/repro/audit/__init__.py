"""Adversarial self-verification of explanations (the audit loop).

This package judges the *explanations* the pipeline produces, not the
configurations themselves -- the division of labor with
:mod:`repro.verify` is:

* :mod:`repro.verify` -- **config verification**: does a concrete
  configuration satisfy a global specification?  (Simulation-based
  whole-network checks, modular composition, failure sweeps.)
* :mod:`repro.audit` -- **explanation audit**: is a lifted
  subspecification a *faithful* local explanation of the synthesized
  configuration?  An :class:`Adjudicator` independent of the lifting
  pipeline generates a deterministic seeded probe suite
  (:func:`generate_suite`), replays each probe through concrete
  simulation against a fresh synthesizer encoding (:class:`Oracle`),
  classifies the subspec ``confirmed`` / ``too-weak`` / ``too-strong``
  with a minimized counterexample, and on refutation feeds the
  counterexample back into the engine as a re-lift constraint.

For convenience the seed config-verification entry points are
re-exported here (``verify``, ``check_modular``,
``verify_under_failures``), so callers auditing explanations can reach
the config checks without a second import -- but they remain
:mod:`repro.verify`'s API, documented there.

See ``docs/audit.md`` for the loop architecture, the verdict
vocabulary and the counterexample format.
"""

from ..verify import (
    FailureCase,
    FailureSweep,
    ModularReport,
    Report,
    Violation,
    check_modular,
    verify,
    verify_under_failures,
)
from .adjudicator import (
    AUDIT_SCHEMA,
    Adjudicator,
    AuditReport,
    Counterexample,
    VERDICT_CONFIRMED,
    VERDICT_TOO_STRONG,
    VERDICT_TOO_WEAK,
    VERDICT_UNRESOLVED,
)
from .oracle import Oracle
from .suite import AuditCase, AuditSuite, generate_suite, renumber_routemaps

__all__ = [
    # Explanation audit (this package's API).
    "AUDIT_SCHEMA",
    "Adjudicator",
    "AuditCase",
    "AuditReport",
    "AuditSuite",
    "Counterexample",
    "Oracle",
    "VERDICT_CONFIRMED",
    "VERDICT_TOO_STRONG",
    "VERDICT_TOO_WEAK",
    "VERDICT_UNRESOLVED",
    "generate_suite",
    "renumber_routemaps",
    # Config verification, re-exported from repro.verify.
    "FailureCase",
    "FailureSweep",
    "ModularReport",
    "Report",
    "Violation",
    "check_modular",
    "verify",
    "verify_under_failures",
]
