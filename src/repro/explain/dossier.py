"""Explanation dossiers: a complete Markdown report for a network.

The operator-facing artifact that ties the toolkit together: for one
network and specification, the dossier collects

* the verification verdict (plus an optional robustness sweep),
* for every requirement x managed router: the subspecification, the
  Figure 1d dialogue line, and the acceptable-region size (optionally
  with its adversarial audit verdict, ``audit=True``),
* the provenance trace of each reachability requirement's route,
* the mined global intents for cross-checking.

Rendered as Markdown so it can be attached to change tickets.
"""

from __future__ import annotations

from typing import List, Optional

from ..bgp.config import NetworkConfig
from ..bgp.provenance import trace_route
from ..bgp.simulation import simulate
from ..spec.ast import Reachability, Specification
from ..spec.printer import format_specification
from ..spec.semantics import destination_prefixes
from ..verify.verifier import verify
from .engine import ExplanationEngine
from .qa import question_and_answer
from .symbolize import ACTION, SymbolizationError

__all__ = ["generate_dossier"]


def generate_dossier(
    config: NetworkConfig,
    specification: Specification,
    title: str = "network explanation dossier",
    max_path_length: Optional[int] = None,
    failure_sweep_k: int = 0,
    audit: bool = False,
    audit_seed: int = 0,
) -> str:
    """Render the full Markdown dossier.

    ``audit`` runs each subspecification through the adversarial check
    loop (:mod:`repro.audit`) and attaches the verdict inline plus an
    ``## Audit`` section; the rest of the dossier is unchanged by it.
    """
    lines: List[str] = [f"# {title}", ""]
    verdicts: List[tuple] = []

    # -- intent ---------------------------------------------------------
    lines += ["## Specification", "", "```"]
    lines.append(format_specification(specification))
    lines += ["```", ""]

    # -- verification ----------------------------------------------------
    report = verify(config, specification)
    lines += ["## Verification", "", f"`{report.summary().splitlines()[0]}`", ""]
    if not report.ok:
        lines += ["```", report.summary(), "```", ""]
    if failure_sweep_k > 0:
        from ..verify.failures import verify_under_failures

        sweep = verify_under_failures(config, specification, k=failure_sweep_k)
        lines += [f"Robustness: `{sweep.summary().splitlines()[0]}`", ""]

    # -- per-requirement explanations ------------------------------------
    engine = ExplanationEngine(config, specification, max_path_length)
    managed = sorted(specification.managed) or sorted(
        router.name for router in config.topology.routers
    )
    lines += ["## Localized subspecifications", ""]
    for block in specification.blocks:
        lines += [f"### Requirement `{block.name}`", ""]
        for router in managed:
            try:
                explanation = engine.explain_router(
                    router, fields=(ACTION,), requirement=block.name
                )
            except SymbolizationError:
                lines += [f"- **{router}**: no configuration lines to inspect", ""]
                continue
            accept = len(explanation.projected.acceptable)
            total = explanation.projected.total_assignments
            lines += [
                f"- **{router}** (acceptable configurations: {accept}/{total})",
                "",
                "  ```",
            ]
            lines += [f"  {line}" for line in explanation.subspec.render().splitlines()]
            lines += ["  ```", ""]
            dialogue = question_and_answer(explanation).splitlines()[-1]
            lines += [f"  > {dialogue}", ""]
            if audit and not explanation.status.degraded:
                from ..audit import Adjudicator
                from .symbolize import symbolize_router

                sketch, holes = symbolize_router(config, router, (ACTION,))
                verdict = Adjudicator(
                    sketch, specification, holes, router,
                    requirement=block.name, seed=audit_seed,
                    max_path_length=max_path_length,
                ).check(explanation.subspec)
                verdicts.append((router, block.name, verdict))
                lines += [
                    f"  {line}" for line in verdict.summary().splitlines()
                ]
                lines += [""]

    if audit:
        confirmed = sum(1 for _, _, v in verdicts if v.confirmed)
        refuted = sum(1 for _, _, v in verdicts if v.refuted)
        lines += [
            "## Audit",
            "",
            f"{len(verdicts)} subspecifications audited "
            f"(seed {audit_seed}): {confirmed} confirmed, "
            f"{refuted} refuted.",
            "",
        ]
        for router, block_name, verdict in verdicts:
            if not verdict.confirmed:
                lines += [f"- **{router}** / `{block_name}`:", "", "  ```"]
                lines += [
                    f"  {line}" for line in verdict.summary().splitlines()
                ]
                lines += ["  ```", ""]

    # -- provenance of required routes ------------------------------------
    outcome = simulate(config)
    reach_statements = [
        (block.name, statement)
        for block in specification.blocks
        for statement in block.statements
        if isinstance(statement, Reachability)
    ]
    if reach_statements:
        lines += ["## Provenance of required routes", ""]
        for block_name, statement in reach_statements:
            for prefix in destination_prefixes(config.topology, statement.destination):
                best = outcome.best(statement.source, prefix)
                if best is None:
                    lines += [
                        f"- `{statement}`: **no route** from {statement.source}",
                        "",
                    ]
                    continue
                lines += [f"- `{statement}` ({block_name})", "", "  ```"]
                lines += [
                    f"  {line}" for line in trace_route(config, best).render().splitlines()
                ]
                lines += ["  ```", ""]

    # -- annotated configurations ------------------------------------------
    from .annotate import annotate_router
    from .symbolize import SymbolizationError as _SymbolizationError

    lines += ["## Annotated configurations", ""]
    for router in managed:
        try:
            annotated = annotate_router(
                config, specification, router, max_path_length, engine=engine
            )
        except _SymbolizationError:
            continue
        lines += ["```", annotated, "```", ""]

    # -- mined global intents ---------------------------------------------
    from ..mining import mine_specification

    mined = mine_specification(config, tuple(sorted(specification.managed)))
    lines += [
        "## Cross-check: mined global intents",
        "",
        f"{mined.summary()}.",
        "",
    ]
    return "\n".join(lines)
