"""Seed specification extraction (paper Figure 6, step 2).

The seed specification is the synthesizer's *own* encoding of the
partially symbolic configuration against the global specification --
"it is essential to use the same encoding process as the synthesizer"
(paper Section 3).  We therefore simply run
:class:`repro.synthesis.encoder.Encoder` on the sketch produced by
:mod:`repro.explain.symbolize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..bgp.config import NetworkConfig
from ..bgp.sketch import Hole
from ..obs import Instrumentation
from ..runtime import Governor
from ..smt import Term
from ..spec.ast import Specification
from ..synthesis.encoder import Encoder, Encoding

__all__ = ["SeedSpecification", "extract_seed"]


@dataclass
class SeedSpecification:
    """The seed specification for one explanation question.

    Attributes
    ----------
    constraint:
        The full constraint term (selection axioms + requirements).
    encoding:
        The underlying :class:`~repro.synthesis.encoder.Encoding`
        (candidate space, hole registry, per-group terms).  ``None``
        for seeds restored from the artifact store: the encoding holds
        recomputation state (candidate space, per-group terms) that is
        deliberately not serialized, so restored seeds describe the
        result but cannot drive further pipeline stages.
    holes:
        The symbolized fields, by hole name.
    """

    constraint: Term
    encoding: Optional[Encoding]
    holes: Dict[str, Hole]

    @property
    def num_constraints(self) -> int:
        """Top-level conjunct count -- the paper's reported metric
        ("more than 1000 constraints even in the simple scenario")."""
        return self.constraint.conjuncts().__len__()

    @property
    def size(self) -> int:
        """Total AST node count."""
        return self.constraint.size()

    @property
    def num_variables(self) -> int:
        return len(self.constraint.free_variables())


def extract_seed(
    sketch: NetworkConfig,
    specification: Specification,
    holes: Dict[str, Hole],
    max_path_length: Optional[int] = None,
    link_cost=None,
    ibgp: bool = False,
    governor: Optional[Governor] = None,
    obs: Optional[Instrumentation] = None,
    recorder=None,
) -> SeedSpecification:
    """Encode the partially symbolic network into a seed specification."""
    encoding = Encoder(
        sketch, specification, max_path_length, link_cost, ibgp=ibgp,
        governor=governor, obs=obs, recorder=recorder,
    ).encode()
    return SeedSpecification(
        constraint=encoding.constraint,
        encoding=encoding,
        holes=dict(holes),
    )
