"""Repair candidates: explainable *verification* (paper §5).

"We believe the idea of localized subspecifications can also be
generalized to assist in explaining network verification."  When a
configuration violates its specification, the actionable question is:
*which device can fix it, and how?*

:func:`repair_candidates` answers it with the existing machinery: for
each managed device, symbolize its line actions, project the seed
specification, and keep the devices whose acceptable region is
non-empty -- each acceptable assignment is a concrete local repair,
verified end-to-end by simulation before being reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.config import NetworkConfig
from ..spec.ast import Specification
from .engine import ExplanationEngine
from .subspec import Subspecification
from .symbolize import ACTION, SymbolizationError, symbolize_router

__all__ = ["RepairCandidate", "RepairReport", "repair_candidates"]


@dataclass(frozen=True)
class RepairCandidate:
    """One device that can single-handedly restore the specification."""

    device: str
    assignments: Tuple[Dict[str, object], ...]
    subspec: Subspecification

    @property
    def minimal_change(self) -> Optional[Dict[str, object]]:
        """The repair assignment closest to the current configuration
        (fewest changed fields); assignments are pre-sorted that way."""
        return dict(self.assignments[0]) if self.assignments else None

    def render(self) -> str:
        lines = [f"repair at {self.device}:"]
        lines.append("  required behaviour: " + self.subspec.render().replace("\n", "\n  "))
        if self.assignments:
            change = self.minimal_change
            assert change is not None
            lines.append("  smallest concrete fix:")
            for name in sorted(change):
                lines.append(f"    {name} = {change[name]}")
        return "\n".join(lines)


@dataclass
class RepairReport:
    """All single-device repairs for a violated specification."""

    candidates: List[RepairCandidate] = field(default_factory=list)
    already_satisfied: bool = False

    @property
    def repairable(self) -> bool:
        return self.already_satisfied or bool(self.candidates)

    def render(self) -> str:
        if self.already_satisfied:
            return "specification already satisfied; nothing to repair"
        if not self.candidates:
            return "no single-device repair exists"
        return "\n\n".join(candidate.render() for candidate in self.candidates)


def repair_candidates(
    config: NetworkConfig,
    specification: Specification,
    requirement: Optional[str] = None,
    fields: Sequence[str] = (ACTION,),
    max_path_length: Optional[int] = None,
) -> RepairReport:
    """Find every managed device that can restore the specification by
    changing only its own (symbolized) fields."""
    from ..verify.verifier import verify

    spec = (
        specification.restricted_to(requirement)
        if requirement is not None
        else specification
    )
    if verify(config, spec).ok:
        return RepairReport(already_satisfied=True)

    engine = ExplanationEngine(config, specification, max_path_length)
    report = RepairReport()
    managed = sorted(specification.managed) or sorted(
        router.name for router in config.topology.routers
    )
    for device in managed:
        try:
            sketch, holes = symbolize_router(config, device, fields=fields)
        except SymbolizationError:
            continue
        explanation = engine.explain_router(
            device, fields=fields, requirement=requirement
        )
        verified: List[Dict[str, object]] = []
        for assignment in explanation.projected.acceptable:
            candidate_config = sketch.fill(assignment)
            if verify(candidate_config, spec).ok:
                verified.append(dict(assignment))
        if not verified:
            continue
        current = _current_values(config, holes)
        verified.sort(
            key=lambda assignment: (
                sum(
                    1
                    for name, value in assignment.items()
                    if str(value) != str(current.get(name))
                ),
                sorted((k, str(v)) for k, v in assignment.items()),
            )
        )
        report.candidates.append(
            RepairCandidate(
                device=device,
                assignments=tuple(verified),
                subspec=explanation.subspec,
            )
        )
    return report


def _current_values(config: NetworkConfig, holes) -> Dict[str, object]:
    """The concrete values currently occupying the symbolized fields.

    Hole names encode ``Var_<Field>[router.direction.neighbor.seq]``;
    we re-read the referenced field from the concrete configuration.
    """
    values: Dict[str, object] = {}
    for name in holes:
        inner = name[name.index("[") + 1 : -1]
        parts = inner.split(".")
        router, direction, neighbor, seq = parts[0], parts[1], parts[2], int(parts[3])
        routemap = config.get_map(router, direction, neighbor)
        if routemap is None:
            continue
        line = routemap.line(seq)
        if name.startswith("Var_Action["):
            values[name] = line.action
    return values
