"""Lifting simplified constraints into the specification language.

This is step (4) of the paper's flow -- the part the paper leaves as
future work ("the specific methods for efficiently searching the
specification language space remain an open question") but whose
intended outputs it shows in Figures 2, 4 and 5.  We implement a
working enumerative search:

1. **Candidate generation** -- local statements involving the device,
   derived from the global requirement: concrete matching slices of
   forbidden patterns through the device, blanket neighbor filters
   ``!(d -> n)`` / ``!(n -> d)``, and device-truncated preference
   chains with drop rules for unlisted suffixes (exactly the shapes of
   the paper's figures).
2. **Semantic evaluation** -- each candidate is encoded with the *same*
   synthesizer encoder (filter-level semantics) and evaluated against
   every hole assignment, giving its acceptable set.
3. **Search** -- the smallest conjunction of candidates whose
   acceptable set equals the projected acceptable set of the seed
   specification.  If none exists the lifting honestly fails and the
   caller falls back to the low-level constraint (the paper's own
   preliminary-result situation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..bgp.config import NetworkConfig
from ..obs import Instrumentation
from ..runtime import GOVERNED_ERRORS, Governor, ReproError
from ..smt import Term
from ..spec.ast import (
    ForbiddenPath,
    PathPreference,
    Reachability,
    RequirementBlock,
    Specification,
    SpecError,
    Statement,
)
from ..spec.semantics import matching_slices
from ..synthesis.encoder import Encoder
from ..topology.paths import Path, PathPattern, WILDCARD
from .project import ProjectedSpec
from .seed import SeedSpecification

__all__ = ["LiftResult", "TERM_MISS", "generate_candidates", "lift"]

AssignmentKey = Tuple[Tuple[str, str], ...]

#: Sentinel a term cache's ``lookup`` returns on a miss (``None`` is a
#: valid cached value: statements whose encoding failed).
TERM_MISS = object()


def _key(assignment: Dict[str, object]) -> AssignmentKey:
    return tuple(sorted((name, str(value)) for name, value in assignment.items()))


@dataclass
class LiftResult:
    """Outcome of the specification-language search.

    ``equivalents`` lists further statements that are *individually*
    equivalent to the found subspecification over the symbolized
    variable space -- e.g. the paper's Figure 5 shows two transit
    slices through R2 that are interchangeable given the concrete rest
    of the network.

    ``exhausted`` marks a search that was interrupted by a governed
    limit (deadline, budget, cancellation): the result is then the best
    *partial* lift over the candidates explored before the interrupt,
    not a verdict on the full candidate space.
    """

    statements: Tuple[Statement, ...]
    lifted: bool
    candidates_tried: int
    equivalents: Tuple[Statement, ...] = ()
    exhausted: bool = False

    @property
    def is_empty(self) -> bool:
        """An empty subspecification: the device may do anything."""
        return self.lifted and not self.statements


def generate_candidates(
    device: str,
    specification: Specification,
    seed: SeedSpecification,
    max_candidates: int = 64,
    governor: Optional[Governor] = None,
    obs: Optional[Instrumentation] = None,
) -> Tuple[Statement, ...]:
    """Local candidate statements for ``device``."""
    space = seed.encoding.space
    topology = space.topology
    found: Dict[str, Statement] = {}

    def add(statement: Statement) -> None:
        if governor is not None:
            governor.checkpoint("lift")
        if obs is not None:
            obs.count("lift.candidates_generated")
        found.setdefault(str(statement), statement)

    # Blanket neighbor filters (Figure 2's shape).
    for neighbor in topology.neighbors(device):
        add(ForbiddenPath(PathPattern.exact(device, neighbor)))
        add(ForbiddenPath(PathPattern.exact(neighbor, device)))

    for statement in specification.statements():
        if isinstance(statement, ForbiddenPath):
            _forbidden_slice_candidates(device, statement, space, add)
        elif isinstance(statement, PathPreference):
            _preference_candidates(device, statement, space, add)
        elif isinstance(statement, Reachability):
            _reachability_candidates(device, statement, space, add)
    return tuple(itertools.islice(found.values(), max_candidates))


def _reachability_candidates(device, statement, space, add) -> None:
    """Device-truncated reachability obligations.

    For each concrete path satisfying the global pattern and passing
    through the device, the suffix from the device is a candidate local
    obligation: "keep reaching the destination this way from here".
    """
    from ..spec.semantics import destination_prefixes

    try:
        prefixes = destination_prefixes(space.topology, statement.destination)
    except Exception:
        return
    seen: Set[Tuple[str, ...]] = set()
    for prefix in prefixes:
        for candidate in space.at(prefix, statement.source):
            traffic = candidate.traffic_path()
            if device not in traffic.hops:
                continue
            if not statement.pattern.matches(traffic):
                continue
            index = traffic.hops.index(device)
            # Two truncation points: at the device, and one hop before
            # it -- the device's export toward that neighbor is often
            # the deciding filter (e.g. R1's export to P1 gates
            # (P1 -> R1 -> ... -> C)).
            starts = [index] if index == 0 else [index, index - 1]
            for start in starts:
                suffix = traffic.hops[start:]
                if len(suffix) < 2 or suffix in seen:
                    continue
                seen.add(suffix)
                add(Reachability(PathPattern(suffix)))
                if len(suffix) > 2:
                    add(Reachability(_wildcard_last(suffix)))


def _forbidden_slice_candidates(device, statement, space, add) -> None:
    """Concrete matching slices through the device (Figure 5's shape)."""
    seen: Set[Tuple[str, ...]] = set()
    for candidate in space.all():
        traffic = candidate.traffic_path()
        if device not in traffic.hops:
            continue
        for start, end in matching_slices(statement.pattern, traffic):
            slice_hops = traffic.hops[start:end]
            if device not in slice_hops or len(slice_hops) < 2:
                continue
            if slice_hops in seen:
                continue
            seen.add(slice_hops)
            add(ForbiddenPath(PathPattern(slice_hops)))


def _preference_candidates(device, statement, space, add) -> Set[Tuple[str, ...]]:
    """Device-truncated preference chains plus drop rules for unlisted
    suffixes (Figure 4's shape)."""
    try:
        from ..spec.semantics import destination_prefixes, expand_preference

        ranked = expand_preference(statement, space.topology, space.max_path_length)
        prefixes = destination_prefixes(space.topology, statement.destination)
    except SpecError:
        return set()
    listed_suffixes: Set[Tuple[str, ...]] = set()
    suffix_patterns: List[PathPattern] = []
    for group in ranked.paths:
        group_suffixes: List[PathPattern] = []
        for traffic_path in group:
            if device not in traffic_path.hops:
                continue
            index = traffic_path.hops.index(device)
            suffix = traffic_path.hops[index:]
            if len(suffix) < 2:
                continue
            listed_suffixes.add(suffix)
            group_suffixes.append(_wildcard_last(suffix))
        if group_suffixes:
            suffix_patterns.append(group_suffixes[0])
    if len(suffix_patterns) >= 2:
        # Subspecifications state the ordering only; drop rules for
        # unlisted paths are separate explicit statements (the paper's
        # Figure 4 lists them that way).
        try:
            from ..spec.ast import PreferenceMode

            add(PathPreference(tuple(suffix_patterns), mode=PreferenceMode.ORDER))
        except SpecError:
            pass
    # Drop rules for unlisted suffixes through the device.
    for prefix in prefixes:
        for candidate in space.at(prefix, statement.source):
            traffic = candidate.traffic_path()
            if device not in traffic.hops:
                continue
            index = traffic.hops.index(device)
            suffix = traffic.hops[index:]
            if len(suffix) < 2 or suffix in listed_suffixes:
                continue
            add(ForbiddenPath(_wildcard_last(suffix)))
    return listed_suffixes


def _wildcard_last(hops: Tuple[str, ...]) -> PathPattern:
    """``(a, b, c)`` -> pattern ``a -> b -> ... -> c`` (the paper's
    display form for suffixes reaching a remote destination)."""
    if len(hops) <= 2:
        return PathPattern(hops)
    return PathPattern(tuple(hops[:-1]) + (WILDCARD, hops[-1]))


def _statement_size(statement: Statement) -> int:
    """Syntactic size of a statement (total pattern elements)."""
    if isinstance(statement, ForbiddenPath):
        return len(statement.pattern.elements)
    if isinstance(statement, PathPreference):
        return sum(len(pattern.elements) for pattern in statement.ranked)
    if isinstance(statement, Reachability):
        return len(statement.pattern.elements)
    return 0


def _statement_term(
    statement: Statement,
    sketch: NetworkConfig,
    specification: Specification,
    seed: SeedSpecification,
    governor: Optional[Governor] = None,
    obs: Optional[Instrumentation] = None,
    recorder=None,
    term_cache=None,
    transfer_cache=None,
) -> Optional[Term]:
    """The filter-level encoding of a candidate statement on the sketch
    (same encoder as the synthesizer; selection axioms are not needed
    because the projection envs already carry the ``best`` values).

    ``term_cache`` is a :class:`~repro.explain.family.StatementTermCache`
    (``lookup``/``tap``/``store``): statement encodings are memoized by
    statement text, shared across requirement blocks and -- when the
    encoding never traverses the sketch's symbolized route-map -- across
    sketches of the whole batch.  A hit skips the encode, legitimately
    including its recorder events: statement encoders traverse a subset
    of the hops the seed encode already recorded with identical inputs,
    so the skipped events are exact duplicates the recorder would
    deduplicate anyway.
    """
    text = str(statement)
    tap = recorder
    if term_cache is not None:
        hit = term_cache.lookup(text, obs=obs)
        if hit is not TERM_MISS:
            return hit
        tap = term_cache.tap(recorder)
    block = RequirementBlock("local", (statement,))
    local_spec = Specification((block,), specification.managed)
    try:
        encoder = Encoder(
            sketch,
            local_spec,
            seed.encoding.space.max_path_length,
            seed.encoding.link_cost,
            ibgp=seed.encoding.ibgp,
            governor=governor,
            obs=obs,
            recorder=tap,
            transfer_cache=transfer_cache,
        )
        encoding = encoder.encode(include_selection=False)
        term: Optional[Term] = encoding.constraint
    except ReproError:
        raise  # governed interrupts must not be swallowed
    except Exception:
        term = None
    if term_cache is not None:
        term_cache.store(text, term, tap)
    return term


def lift(
    device: str,
    sketch: NetworkConfig,
    specification: Specification,
    seed: SeedSpecification,
    projected: ProjectedSpec,
    envs: Dict[AssignmentKey, Dict[str, object]],
    max_conjunction: int = 3,
    governor: Optional[Governor] = None,
    obs: Optional[Instrumentation] = None,
    recorder=None,
    term_cache=None,
    transfer_cache=None,
) -> LiftResult:
    """Search the specification language for an equivalent subspec.

    ``envs`` maps each hole-assignment key to the evaluation
    environment produced during projection (hole values plus simulated
    selection values).

    When a ``governor`` limit fires mid-search, the search degrades
    instead of raising: the candidates already evaluated are still
    searched for a singleton equivalent (no further budget is spent),
    and the result is marked ``exhausted``.
    """
    all_keys = set(envs)
    target = {_key(assignment) for assignment in projected.acceptable}
    if target == all_keys:
        return LiftResult(statements=(), lifted=True, candidates_tried=0)

    exhausted = False
    evaluated: List[Tuple[Statement, FrozenSet[AssignmentKey]]] = []
    try:
        candidates = generate_candidates(
            device, specification, seed, governor=governor, obs=obs
        )
        for statement in candidates:
            if governor is not None:
                governor.checkpoint("lift")
            if obs is not None:
                obs.count("lift.candidates_evaluated")
            term = _statement_term(
                statement, sketch, specification, seed, governor=governor, obs=obs,
                recorder=recorder, term_cache=term_cache,
                transfer_cache=transfer_cache,
            )
            if term is None:
                continue
            try:
                accepted = frozenset(
                    key for key, env in envs.items() if bool(term.evaluate(env))
                )
            except KeyError:
                continue
            evaluated.append((statement, accepted))
    except GOVERNED_ERRORS:
        exhausted = True

    # A statement can participate only if it holds on every acceptable
    # assignment (otherwise the conjunction would exclude valid configs).
    necessary = [(s, acc) for s, acc in evaluated if target <= acc]
    # Tightest acceptable set first; syntactically smaller statements
    # win ties so blanket patterns beat longer equivalent slices.
    necessary.sort(key=lambda pair: (len(pair[1]), _statement_size(pair[0]), str(pair[0])))

    singleton_equivalents = tuple(
        statement for statement, accepted in necessary if accepted == target
    )
    if not exhausted:
        try:
            for size in range(1, max_conjunction + 1):
                for combo in itertools.combinations(necessary, size):
                    if governor is not None:
                        governor.checkpoint("lift")
                    if obs is not None:
                        obs.count("lift.combinations")
                    intersection = set(all_keys)
                    for _, accepted in combo:
                        intersection &= accepted
                    if intersection == target:
                        chosen = tuple(statement for statement, _ in combo)
                        others = tuple(
                            s for s in singleton_equivalents if s not in chosen
                        )
                        return LiftResult(
                            statements=chosen,
                            lifted=True,
                            candidates_tried=len(evaluated),
                            equivalents=others,
                        )
        except GOVERNED_ERRORS:
            exhausted = True
    if exhausted and singleton_equivalents:
        # Partial lift: a single explored statement already matches the
        # target exactly, so a (possibly non-minimal) lift exists.
        chosen = (singleton_equivalents[0],)
        return LiftResult(
            statements=chosen,
            lifted=True,
            candidates_tried=len(evaluated),
            equivalents=tuple(s for s in singleton_equivalents[1:]),
            exhausted=True,
        )
    return LiftResult(
        statements=(),
        lifted=False,
        candidates_tried=len(evaluated),
        exhausted=exhausted,
    )
