"""Shared computation across families of explanation questions.

A *job family* groups the per-line questions of one (router,
requirement block): siblings symbolize different lines of the same
device against the same specification, so almost everything they
compute -- the seed encoding's traversal of the rest of the network,
the concrete simulations behind projection, the filter-level encodings
of candidate local statements -- is repeated work.  This module is the
cache layer a worker process threads through every family member:

* :class:`TransferCache` memoizes the *symbolic hop*: applying a
  hole-free (export map, import map) pair of some other router to an
  attribute state.  Terms are globally hash-consed, so replaying a
  cached hop yields the *same* term objects a fresh
  ``apply_routemap_symbolic`` would build -- outputs stay
  byte-identical by construction.
* ``seed_for`` memoizes one **full** encode per sketch and reassembles
  each requirement's seed from the recorded per-group terms.  The
  selection axioms traverse every candidate regardless of which
  requirement is asked, so the reassembled restricted seed is
  term-for-term identical to a fresh restricted encode.
* :class:`SimulationCache` memoizes converged routing outcomes by the
  rendered text of the filled configuration -- sibling jobs fill their
  sketches back to (mostly) the same concrete networks.
* ``term_cache_for`` memoizes candidate-statement encodings: always
  across requirement blocks of one sketch (a statement's filter-level
  term does not depend on the requirement being asked), and across
  *sketches* whenever the statement's encoding never traverses a
  symbolized route-map -- then the term is hole-free and, by
  hash-consing, identical under every sibling sketch.
* ``certify`` maintains one assumption-based SAT session per family
  (:class:`~repro.smt.incremental.TermSession`): the family's union
  sketch is encoded **once**, and every member's projected verdicts are
  re-checked by assuming per-hole selector literals -- solve once per
  router family, assume per hole.  Agreement is counted
  (``smt.session.agree`` / ``smt.session.disagree``), never asserted:
  the SAT view asks "does *some* stable selection satisfy the
  requirement" while projection asks about *the* converged one, and
  the two legitimately diverge on ties and non-convergence.

Every cache replays the transfer/simulation events it observed into
the requesting job's :class:`~repro.farm.readset.TransferRecorder`
(capture is unfiltered; the recorder's own device filter and
deduplication run on replay), so recorded read-sets -- and therefore
cache keys and invalidation -- are byte-identical to unshared runs.

Sharing is only legal ungoverned: a deadline or budget makes answers
depend on how much work *this* run performed, which a cache would
falsify.  The engine enforces this (``shared`` + ``governor`` is a
``ValueError``) and the farm only enables sharing when a batch runs
without ``--timeout``/``--budget``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.render import render_network, render_routemap
from ..bgp.simulation import ConvergenceError, simulate
from ..bgp.sketch import Hole, is_hole
from ..obs import Instrumentation
from ..smt import Term, TermSession
from ..smt.builders import And
from ..spec.ast import Specification
from ..synthesis.encoder import Encoder, Encoding
from ..synthesis.symexec import AttributeUniverse, SymbolicRoute
from .lift import TERM_MISS
from .seed import SeedSpecification
from .symbolize import (
    ACTION,
    MATCH_ATTR,
    MATCH_VALUE,
    SET_ATTR,
    FieldRef,
    symbolize,
)

__all__ = [
    "SharedCaches",
    "SimulationCache",
    "StatementTermCache",
    "TransferCache",
    "family_key",
]

#: Projections larger than this are not re-checked against the family
#: SAT session; the certificate is a per-assignment probe and a
#: router-granularity question can enumerate thousands of assignments.
CERTIFY_ASSIGNMENT_LIMIT = 64

#: Mirrors :data:`repro.farm.job.LINE` without importing the farm
#: (the farm layers on top of this package, not under it).
_LINE = "line"


def family_key(job) -> Tuple[object, ...]:
    """The grouping key: siblings share device, requirement, shape."""
    return (job.device, job.requirement, job.granularity, tuple(job.fields))


def _sketch_key(holes: Dict[str, Hole]) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """A sketch is pinned by its hole names and stringified domains
    (the same identification the engine's question cache uses)."""
    return tuple(
        (name, tuple(str(value) for value in holes[name].domain))
        for name in sorted(holes)
    )


class _CaptureRecorder:
    """Buffers transfer events unfiltered for later replay.

    The capturing run must not filter or deduplicate: a later job with
    a *different* device filter replays the same stream through its own
    recorder, which applies its own filtering.  Event order and
    duplication are irrelevant to read-set bytes (the recorder dedups
    and its payload sorts), so replay is exact.
    """

    def __init__(self) -> None:
        self.events: List[Tuple[str, tuple]] = []

    def symbolic(self, *args: object) -> None:
        self.events.append(("symbolic", args))

    def concrete(self, *args: object) -> None:
        self.events.append(("concrete", args))

    def replay(self, recorder) -> None:
        if recorder is None:
            return
        for seam, args in self.events:
            getattr(recorder, seam)(*args)


class TransferCache:
    """Memoizes symbolic propagation through a hole-free hop.

    A hop is the (export map, import map) pair between two routers plus
    the iBGP flag; its result on an input attribute state is five
    values: ``(export_permit, after_export, after_hop, import_permit,
    state_out)``.  Keys use the maps' rendered text (not identity: the
    farm re-pickles configurations per job) and the input state's
    hash-consed terms.  Hops whose maps contain holes are never cached:
    applying a holey map registers hole variables with the running
    encoder, which a cache hit would silently skip.
    """

    def __init__(self) -> None:
        self._entries: Dict[tuple, tuple] = {}
        #: id(map) -> (map, rendered text) -- the map reference keeps
        #: the id stable for the memo's lifetime.
        self._rendered: Dict[int, Tuple[object, Optional[str]]] = {}
        self._hole_free: Dict[int, Tuple[object, bool]] = {}
        self._universe_keys: Dict[int, Tuple[object, tuple]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _render(self, routemap) -> Optional[str]:
        if routemap is None:
            return None
        memo = self._rendered.get(id(routemap))
        if memo is not None:
            return memo[1]
        text = render_routemap(routemap)
        self._rendered[id(routemap)] = (routemap, text)
        return text

    def _is_hole_free(self, routemap) -> bool:
        if routemap is None:
            return True
        memo = self._hole_free.get(id(routemap))
        if memo is not None:
            return memo[1]
        free = not any(
            is_hole(line.action)
            or is_hole(line.match_attr)
            or is_hole(line.match_value)
            or any(is_hole(c.attribute) or is_hole(c.value) for c in line.sets)
            for line in routemap.lines
        )
        self._hole_free[id(routemap)] = (routemap, free)
        return free

    def _universe_key(self, universe: AttributeUniverse) -> tuple:
        memo = self._universe_keys.get(id(universe))
        if memo is not None:
            return memo[1]
        key = (
            tuple(str(c) for c in universe.communities),
            tuple(universe.next_hop_sort.values),
        )
        self._universe_keys[id(universe)] = (universe, key)
        return key

    def _state_key(self, state: SymbolicRoute) -> tuple:
        # Terms are hash-consed: structurally equal states produce
        # equal keys even across encoder instances.
        return (
            str(state.prefix),
            state.local_pref,
            state.med,
            state.next_hop,
            tuple(sorted((str(c), t) for c, t in state.communities.items())),
        )

    def _key(
        self, export_map, import_map, session_is_ibgp: bool,
        state: SymbolicRoute, universe: AttributeUniverse,
    ) -> Optional[tuple]:
        if not (self._is_hole_free(export_map) and self._is_hole_free(import_map)):
            return None
        return (
            self._universe_key(universe),
            self._render(export_map),
            self._render(import_map),
            bool(session_is_ibgp),
            self._state_key(state),
        )

    def lookup(
        self, export_map, import_map, session_is_ibgp: bool,
        state: SymbolicRoute, universe: AttributeUniverse,
        obs: Optional[Instrumentation] = None,
    ) -> Optional[tuple]:
        key = self._key(export_map, import_map, session_is_ibgp, state, universe)
        if key is None:
            return None
        hit = self._entries.get(key)
        if hit is not None and obs is not None:
            obs.count("encode.transfer_cache_hits")
        return hit

    def store(
        self, export_map, import_map, session_is_ibgp: bool,
        state: SymbolicRoute, universe: AttributeUniverse, result: tuple,
    ) -> None:
        key = self._key(export_map, import_map, session_is_ibgp, state, universe)
        if key is not None:
            self._entries[key] = result


class SimulationCache:
    """Memoizes concrete control-plane runs by rendered configuration.

    Sibling jobs fill their sketches back to overlapping concrete
    networks -- every job's "original value" assignment *is* the
    synthesized network -- so converged outcomes are keyed by the full
    rendered text of the filled configuration (never by the hole
    values, which name different fields in different sketches).
    Non-convergence is cached too and re-raised on hit.  Runs with a
    link-cost callable or a governor bypass the cache entirely.
    """

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[str, bool],
            Tuple[object, Optional[ConvergenceError], _CaptureRecorder],
        ] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def simulate(
        self,
        filled: NetworkConfig,
        link_cost=None,
        ibgp: bool = False,
        governor=None,
        obs: Optional[Instrumentation] = None,
        recorder=None,
    ):
        if link_cost is not None or governor is not None:
            return simulate(
                filled, link_cost=link_cost, ibgp=ibgp, governor=governor,
                obs=obs, recorder=recorder,
            )
        key = (render_network(filled), bool(ibgp))
        hit = self._entries.get(key)
        if hit is not None:
            outcome, error, capture = hit
            if obs is not None:
                obs.count("project.sim_cache_hits")
            capture.replay(recorder)
            if error is not None:
                raise error
            return outcome
        capture = _CaptureRecorder()
        try:
            outcome = simulate(filled, ibgp=ibgp, obs=obs, recorder=capture)
        except ConvergenceError as exc:
            self._entries[key] = (None, exc, capture)
            capture.replay(recorder)
            raise
        self._entries[key] = (outcome, None, capture)
        capture.replay(recorder)
        return outcome


class _SeamTap:
    """Forwards recorder events while collecting traversed seams.

    Wraps the job recorder during one statement encode so the cache
    learns which ``(owner, direction, neighbor)`` route-maps the
    encoding applied -- the safety condition for cross-sketch reuse.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.seams: Set[Tuple[str, str, str]] = set()

    def symbolic(self, owner, direction, neighbor, *rest) -> None:
        self.seams.add((owner, direction, neighbor))
        if self.inner is not None:
            self.inner.symbolic(owner, direction, neighbor, *rest)

    def concrete(self, owner, direction, neighbor, *rest) -> None:
        self.seams.add((owner, direction, neighbor))
        if self.inner is not None:
            self.inner.concrete(owner, direction, neighbor, *rest)


class StatementTermCache:
    """Two-tier memo for candidate-statement terms (see :func:`lift`).

    The *local* tier is per sketch and unconditional -- a sketch asks
    the same statements under every requirement block.  The *global*
    tier is shared across all sketches of the batch and guarded by the
    seams the encoding traversed: route-map traversal is structural
    (paths and neighbors, never hole values), so a statement whose
    encode applied no symbolized map produces a hole-free term that is
    -- by hash-consing -- the very object a fresh encode under any
    other hole-avoiding sketch would build.  Encodes that raised are
    cached as ``None`` under the same guard: with no symbolized map on
    the traversal up to the failure point, a sibling sketch's encode
    fails identically.
    """

    def __init__(
        self,
        local: Dict[str, Optional[Term]],
        shared: Dict[str, Tuple[Optional[Term], frozenset]],
        blocked: frozenset,
    ) -> None:
        self._local = local
        self._shared = shared
        self._blocked = blocked

    def lookup(self, text: str, obs: Optional[Instrumentation] = None) -> object:
        if text in self._local:
            if obs is not None:
                obs.count("lift.term_cache_hits")
            return self._local[text]
        entry = self._shared.get(text)
        if entry is not None and not (entry[1] & self._blocked):
            if obs is not None:
                obs.count("lift.term_cache_hits")
            return entry[0]
        return TERM_MISS

    def tap(self, recorder) -> _SeamTap:
        return _SeamTap(recorder)

    def store(self, text: str, term: Optional[Term], tap) -> None:
        self._local[text] = term
        seams = frozenset(getattr(tap, "seams", ()))
        if not (seams & self._blocked):
            self._shared.setdefault(text, (term, seams))


def _original_value(config: NetworkConfig, hole_name: str) -> object:
    """The concrete field value a hole replaced in ``config``."""
    ref = FieldRef.from_hole_name(hole_name)
    routemap = config.get_map(ref.router, ref.direction, ref.neighbor)
    if routemap is None:
        raise KeyError(hole_name)
    line = routemap.line(ref.seq)
    if ref.field == ACTION:
        return line.action
    if ref.field == MATCH_ATTR:
        return line.match_attr
    if ref.field == MATCH_VALUE:
        return line.match_value
    clause = line.sets[ref.clause]
    return clause.attribute if ref.field == SET_ATTR else clause.value


class _FamilySession:
    """One incremental SAT session per job family.

    The family's *union* sketch (every member's symbolized fields at
    once) is encoded against the family's requirement and blasted into
    a single :class:`TermSession`.  Each member's projected verdicts
    are then probed as assumption solves: the member's own holes take
    the assignment under test, every sibling hole is pinned to its
    original concrete value, and the formula is never re-encoded.
    """

    def __init__(self, shared: "SharedCaches", members: Sequence[object], job, obs) -> None:
        self.config = shared.config
        if job.granularity == _LINE and len(members) > 1:
            refs = [
                FieldRef(m.device, m.direction, m.neighbor, m.seq, f)
                for m in members
                for f in m.fields
            ]
            sketch, holes = symbolize(shared.config, refs)
        else:
            sketch, holes = job.symbolize(shared.config)
        spec = (
            shared.specification.restricted_to(job.requirement)
            if job.requirement is not None
            else shared.specification
        )
        encoding = Encoder(
            sketch, spec, shared.max_path_length, None, ibgp=shared.ibgp,
            transfer_cache=shared.transfers,
        ).encode()
        if obs is not None:
            obs.count("engine.family.encodes")
        self.encoding = encoding
        self.holes = holes
        self.session = TermSession(encoding.constraint, obs=obs)

    def _selector(self, name: str, value: object, obs) -> Optional[int]:
        try:
            variable = self.encoding.holes.variable(name)
        except KeyError:
            # The hole's line was never traversed by this requirement's
            # candidates; the formula does not constrain it.
            if obs is not None:
                obs.count("smt.session.unpinned")
            return None
        try:
            pin = int(value) if variable.sort.is_int() else str(value)  # type: ignore[arg-type]
            return self.session.selector(variable, pin)
        except (KeyError, TypeError, ValueError):
            if obs is not None:
                obs.count("smt.session.unpinned")
            return None

    def check(self, projected, obs) -> None:
        """Probe every projected verdict of one member against the
        shared session, counting agreement."""
        self.session.attach_obs(obs)
        own: Set[str] = set(projected.holes)
        pins: List[int] = []
        for name in sorted(self.holes):
            if name in own:
                continue
            literal = self._selector(name, _original_value(self.config, name), obs)
            if literal is not None:
                pins.append(literal)
        for expected, assignments in (
            (True, projected.acceptable),
            (False, projected.rejected),
        ):
            for assignment in assignments:
                assumptions = list(pins)
                for name in sorted(assignment):
                    literal = self._selector(name, assignment[name], obs)
                    if literal is not None:
                        assumptions.append(literal)
                result = self.session.solve(assumptions)
                if obs is not None:
                    obs.count(
                        "smt.session.agree"
                        if result.satisfiable == expected
                        else "smt.session.disagree"
                    )


class SharedCaches:
    """Every cross-job cache one worker process shares within a batch.

    One instance serves *one* (configuration, specification, options)
    triple; the farm keys instances by a batch digest and rebuilds on
    mismatch.  All methods replay their recorded transfer events into
    the per-job recorder they are handed, keeping read-sets exact.
    """

    def __init__(
        self,
        config: NetworkConfig,
        specification: Specification,
        max_path_length: Optional[int] = None,
        projection_limit: int = 4096,
        ibgp: bool = False,
    ) -> None:
        self.config = config
        self.specification = specification
        self.max_path_length = max_path_length
        self.projection_limit = projection_limit
        self.ibgp = ibgp
        self.transfers = TransferCache()
        self.simulations = SimulationCache()
        #: sketch key -> (full Encoding, captured transfer events)
        self._seeds: Dict[tuple, Tuple[Encoding, _CaptureRecorder]] = {}
        #: sketch keys whose full encode failed; their seeds fall back
        #: to per-call restricted encodes (identical to unshared runs).
        self._unshared: Set[tuple] = set()
        self._term_caches: Dict[tuple, Dict[str, Optional[Term]]] = {}
        #: statement text -> (term, seams its encode traversed); the
        #: cross-sketch tier of :class:`StatementTermCache`.
        self._statement_terms: Dict[str, Tuple[Optional[Term], frozenset]] = {}
        self._members: Dict[tuple, Tuple[object, ...]] = {}
        self._sessions: Dict[tuple, Optional[_FamilySession]] = {}

    # -- seed sharing ---------------------------------------------------

    def seed_for(
        self,
        sketch: NetworkConfig,
        holes: Dict[str, Hole],
        requirement: Optional[str],
        obs: Optional[Instrumentation] = None,
        recorder=None,
    ) -> SeedSpecification:
        """The seed specification for one question, from a shared full
        encode of the sketch.

        The full encode (all requirement blocks, selection axioms) runs
        once per sketch; each requirement's seed is reassembled from
        its recorded constraint group.  Selection axioms traverse every
        candidate whatever the specification restriction, so the
        reassembled terms -- and, via hash-consing, the constraint
        object itself -- equal a fresh restricted encode's.
        """
        key = _sketch_key(holes)
        if key not in self._unshared:
            entry = self._seeds.get(key)
            if entry is None:
                capture = _CaptureRecorder()
                try:
                    encoding = Encoder(
                        sketch, self.specification, self.max_path_length, None,
                        ibgp=self.ibgp, obs=obs, recorder=capture,
                        transfer_cache=self.transfers,
                    ).encode()
                except Exception:
                    # Some *other* requirement block may be what failed;
                    # this sketch reverts to per-call restricted encodes.
                    self._unshared.add(key)
                else:
                    entry = (encoding, capture)
                    self._seeds[key] = entry
                    if obs is not None:
                        obs.count("engine.family.seed_encodes")
            else:
                if obs is not None:
                    obs.count("engine.family.seed_reuse")
            if entry is not None:
                encoding, capture = entry
                capture.replay(recorder)
                return self._assemble(encoding, holes, requirement)
        spec = (
            self.specification.restricted_to(requirement)
            if requirement is not None
            else self.specification
        )
        encoding = Encoder(
            sketch, spec, self.max_path_length, None, ibgp=self.ibgp,
            obs=obs, recorder=recorder, transfer_cache=self.transfers,
        ).encode()
        return SeedSpecification(
            constraint=encoding.constraint, encoding=encoding, holes=dict(holes)
        )

    def _assemble(
        self,
        encoding: Encoding,
        holes: Dict[str, Hole],
        requirement: Optional[str],
    ) -> SeedSpecification:
        if requirement is None:
            return SeedSpecification(
                constraint=encoding.constraint,
                encoding=encoding,
                holes=dict(holes),
            )
        group = f"requirement:{requirement}"
        block_terms = encoding.groups[group]
        selection = encoding.groups["selection"]
        constraint = And(*(list(selection) + list(block_terms)))
        restricted = Encoding(
            constraint=constraint,
            groups={group: block_terms, "selection": selection},
            holes=encoding.holes,
            space=encoding.space,
            universe=encoding.universe,
            best_vars=dict(encoding.best_vars),
            filter_ok=dict(encoding.filter_ok),
            local_pref=dict(encoding.local_pref),
            link_cost=encoding.link_cost,
            ibgp=encoding.ibgp,
        )
        return SeedSpecification(
            constraint=constraint, encoding=restricted, holes=dict(holes)
        )

    # -- lift sharing ---------------------------------------------------

    def term_cache_for(self, holes: Dict[str, Hole]) -> StatementTermCache:
        """The candidate-statement term cache for one sketch.

        The sketch's symbolized route-maps are the *blocked* seams: a
        cached term is only shared across sketches when its encode
        never traversed one (otherwise the term mentions hole
        variables and is sketch-specific, so it stays in the local
        tier).
        """
        blocked = frozenset(
            (ref.router, ref.direction, ref.neighbor)
            for ref in (FieldRef.from_hole_name(name) for name in holes)
        )
        return StatementTermCache(
            self._term_caches.setdefault(_sketch_key(holes), {}),
            self._statement_terms,
            blocked,
        )

    # -- the family SAT session -----------------------------------------

    def register_family(self, jobs: Sequence[object]) -> None:
        """Declare the sibling set of a family before its members run
        (the certifier encodes the union sketch of all members)."""
        if not jobs:
            return
        self._members.setdefault(family_key(jobs[0]), tuple(jobs))

    def certify(self, job, explanation, obs: Optional[Instrumentation] = None) -> None:
        """Re-check one member's projected verdicts against the
        family's shared SAT session (counted, never asserted)."""
        projected = explanation.projected
        if projected is None or explanation.status.name != "EXACT":
            return
        if projected.total_assignments > CERTIFY_ASSIGNMENT_LIMIT:
            if obs is not None:
                obs.count("smt.session.certify_skipped")
            return
        key = family_key(job)
        if key in self._sessions:
            session = self._sessions[key]
        else:
            try:
                session = _FamilySession(
                    self, self._members.get(key, (job,)), job, obs
                )
            except Exception:
                session = None
                if obs is not None:
                    obs.count("smt.session.family_encode_errors")
            self._sessions[key] = session
        if session is not None:
            session.check(projected, obs)
