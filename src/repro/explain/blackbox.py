"""Black-box explanations: beyond constraint-based synthesizers.

Paper §5: "there are synthesizers that use custom algorithms ... a
more general solution is needed".  The seed-specification step needs
the synthesizer's encoder, but the *projection* and *lifting* steps
only need an oracle for "does this device configuration satisfy the
requirement?".  This module supplies that oracle from the concrete
semantics alone -- simulate and verify -- so explanations can be
generated for the output of *any* synthesizer.

The resulting acceptable regions use **traffic-level** semantics
(what the verifier checks) rather than the constraint-based engine's
**filter-level** semantics (what NetComplete-style synthesizers
enforce).  The gap between the two is precisely the "slack" the
modular validator reports; the benchmark compares both regions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.simulation import ConvergenceError
from ..bgp.sketch import Hole
from ..spec.ast import Specification
from ..verify.verifier import verify
from .subspec import Subspecification
from .symbolize import ACTION, FieldRef, symbolize, symbolize_router

__all__ = ["BlackboxExplanation", "explain_blackbox"]


@dataclass
class BlackboxExplanation:
    """A traffic-level explanation produced without any encoder."""

    device: str
    requirement: str
    holes: Dict[str, Hole]
    acceptable: Tuple[Dict[str, object], ...]
    rejected: Tuple[Dict[str, object], ...]

    @property
    def total_assignments(self) -> int:
        return len(self.acceptable) + len(self.rejected)

    @property
    def is_unconstrained(self) -> bool:
        return not self.rejected

    def acceptable_keys(self) -> frozenset:
        return frozenset(
            tuple(sorted((name, str(value)) for name, value in assignment.items()))
            for assignment in self.acceptable
        )

    def report(self) -> str:
        lines = [
            f"black-box explanation for {self.device} "
            f"(requirement {self.requirement}, traffic-level semantics):",
            f"  acceptable configs: {len(self.acceptable)}"
            f"/{self.total_assignments}",
        ]
        if self.is_unconstrained:
            lines.append(f"  {self.device} {{ }}  // any behaviour works")
        return "\n".join(lines)


def explain_blackbox(
    config: NetworkConfig,
    specification: Specification,
    device: str,
    requirement: Optional[str] = None,
    targets: Optional[Sequence[FieldRef]] = None,
    fields: Sequence[str] = (ACTION,),
    limit: int = 4096,
) -> BlackboxExplanation:
    """Explain a device by exhaustive simulate-and-verify.

    No encoder, no constraints: works for the output of any
    synthesizer.  The cost is one full verification (including the
    preference failure analysis) per assignment, so the hole space must
    stay small -- the same "one variable at a time" regime the paper
    recommends.
    """
    spec = (
        specification.restricted_to(requirement)
        if requirement is not None
        else specification
    )
    if targets is not None:
        sketch, holes = symbolize(config, list(targets))
    else:
        sketch, holes = symbolize_router(config, device, fields=fields)

    names = sorted(holes)
    total = 1
    for name in names:
        total *= len(holes[name].domain)
    if total > limit:
        raise ValueError(
            f"{total} assignments exceed the black-box limit of {limit}"
        )

    acceptable: List[Dict[str, object]] = []
    rejected: List[Dict[str, object]] = []
    domains = [holes[name].domain for name in names]
    for combo in itertools.product(*domains):
        assignment = dict(zip(names, combo))
        filled = sketch.fill(assignment)
        try:
            ok = verify(filled, spec).ok
        except ConvergenceError:
            ok = False
        if ok:
            acceptable.append(assignment)
        else:
            rejected.append(assignment)
    return BlackboxExplanation(
        device=device,
        requirement=requirement if requirement is not None else "<all>",
        holes=dict(holes),
        acceptable=tuple(acceptable),
        rejected=tuple(rejected),
    )
