"""Localized explanations for synthesized configurations (paper core)."""

from .annotate import annotate_router
from .blackbox import BlackboxExplanation, explain_blackbox
from .certificate import AuditResult, Certificate, audit, make_certificate
from .dossier import generate_dossier
from .engine import Explanation, ExplanationEngine, ExplanationStatus
from .family import SharedCaches, SimulationCache, TransferCache, family_key
from .lift import LiftResult, generate_candidates, lift
from .project import ProjectedSpec, ProjectionError, project
from .qa import question_and_answer
from .repair import RepairCandidate, RepairReport, repair_candidates
from .seed import SeedSpecification, extract_seed
from .serialize import SCHEMA as EXPLANATION_SCHEMA
from .serialize import explanation_from_dict, explanation_to_dict
from .session import InteractiveSession, WhatIfResult
from .simplifier import SimplifiedSeed, cone_of_influence, simplify_seed
from .subspec import Subspecification
from .summaries import AssumeGuaranteeSummary, summarize
from .symbolize import (
    ACTION,
    FieldRef,
    MATCH_ATTR,
    MATCH_VALUE,
    SET_ATTR,
    SET_VALUE,
    SymbolizationError,
    default_domain,
    symbolize,
    symbolize_line,
    symbolize_router,
)

__all__ = [
    "ExplanationEngine",
    "Explanation",
    "ExplanationStatus",
    "SharedCaches",
    "SimulationCache",
    "TransferCache",
    "family_key",
    "BlackboxExplanation",
    "explain_blackbox",
    "Subspecification",
    "AssumeGuaranteeSummary",
    "summarize",
    "RepairCandidate",
    "RepairReport",
    "repair_candidates",
    "question_and_answer",
    "Certificate",
    "AuditResult",
    "make_certificate",
    "audit",
    "generate_dossier",
    "annotate_router",
    "InteractiveSession",
    "WhatIfResult",
    "SeedSpecification",
    "extract_seed",
    "EXPLANATION_SCHEMA",
    "explanation_to_dict",
    "explanation_from_dict",
    "SimplifiedSeed",
    "simplify_seed",
    "cone_of_influence",
    "ProjectedSpec",
    "ProjectionError",
    "project",
    "LiftResult",
    "lift",
    "generate_candidates",
    "FieldRef",
    "symbolize",
    "symbolize_line",
    "symbolize_router",
    "default_domain",
    "SymbolizationError",
    "ACTION",
    "MATCH_ATTR",
    "MATCH_VALUE",
    "SET_ATTR",
    "SET_VALUE",
]
