"""Annotated configurations: subspecifications as config comments.

The paper's introduction motivates subspecifications by analogy:
"similar to function comments that improve software readability,
subspecifications establish connections between each part of the
network configurations and the global intents".  This module renders
that analogy literally: the Cisco-style configuration text of a
router, with each route-map line annotated by the requirements it
serves and the condition it must uphold.

Per line, the annotation is derived from single-field explanations of
the line's action against every requirement block:

* lines whose subspec is empty for every requirement are marked
  redundant (Scenario 1's `set next-hop` observation, generalized);
* otherwise each relevant requirement contributes one comment with the
  lifted statement (or the minimized low-level condition).
"""

from __future__ import annotations

from typing import List, Optional

from ..bgp.config import NetworkConfig
from ..bgp.render import render_routemap
from ..smt import to_infix
from ..spec.ast import Specification
from .engine import ExplanationEngine
from .symbolize import ACTION

__all__ = ["annotate_router"]


def annotate_router(
    config: NetworkConfig,
    specification: Specification,
    router: str,
    max_path_length: Optional[int] = None,
    engine: Optional[ExplanationEngine] = None,
) -> str:
    """The router's configuration text with per-line why-comments."""
    if engine is None:
        engine = ExplanationEngine(config, specification, max_path_length)
    router_config = config.router_config(router)
    blocks: List[str] = [f"! configuration of {router} (annotated)"]
    for direction, neighbor in router_config.sessions():
        routemap = router_config.get_map(direction, neighbor)
        assert routemap is not None
        blocks.append(
            f"! neighbor {neighbor} route-map {routemap.name} {direction}"
        )
        for line in routemap.lines:
            annotations = _annotations_for_line(
                engine, specification, router, direction, neighbor, line.seq
            )
            blocks.extend(annotations)
            blocks.append(_render_single_line(routemap, line.seq))
    return "\n".join(blocks)


def _annotations_for_line(
    engine: ExplanationEngine,
    specification: Specification,
    router: str,
    direction: str,
    neighbor: str,
    seq: int,
) -> List[str]:
    comments: List[str] = []
    for block in specification.blocks:
        explanation = engine.explain_line(
            router, direction, neighbor, seq, fields=(ACTION,),
            requirement=block.name,
        )
        if explanation.subspec.is_empty:
            continue
        if explanation.subspec.lifted:
            for statement in explanation.lift_result.statements:
                comments.append(f"! why [{block.name}]: {statement}")
        else:
            comments.append(
                f"! why [{block.name}]: {to_infix(explanation.projected.term)}"
            )
    if not comments:
        comments.append("! why: no requirement constrains this line (redundant)")
    return comments


def _render_single_line(routemap, seq: int) -> str:
    """The Cisco rendering of one line of a route-map."""
    from ..bgp.routemap import RouteMap

    single = RouteMap(routemap.name, (routemap.line(seq),))
    return render_routemap(single)
