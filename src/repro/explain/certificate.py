"""Explanation certificates: exportable, independently checkable.

The paper's goal is *trust*: an operator should not have to believe
the explanation engine any more than the synthesizer.  A certificate
makes that concrete -- it packages an explanation's claims as plain
data (JSON-serializable), and :func:`audit` re-checks every claim from
scratch using only the concrete simulator and verifier:

1. every assignment the certificate accepts keeps the requirement
   verifiable (at the certificate's stated semantics level);
2. every assignment it rejects violates the filter-level requirement
   (re-derived independently);
3. the claimed subspecification statements hold on every accepted
   assignment.

A certificate that passes the audit can be archived with the change
ticket; re-auditing later detects drift between the explanation and
the deployed configuration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bgp.config import NetworkConfig
from ..spec.ast import RequirementBlock, Specification
from ..spec.parser import parse_statement
from ..spec.printer import format_statement
from .engine import Explanation
from .symbolize import FieldRef, symbolize

__all__ = ["Certificate", "AuditResult", "make_certificate", "audit"]


@dataclass(frozen=True)
class Certificate:
    """A self-contained record of one explanation's claims."""

    device: str
    requirement: str
    variables: Tuple[str, ...]
    domains: Dict[str, Tuple[str, ...]]
    acceptable: Tuple[Tuple[Tuple[str, str], ...], ...]   # sorted (name, value) pairs
    statements: Tuple[str, ...]
    lifted: bool

    def to_json(self) -> str:
        payload = {
            "device": self.device,
            "requirement": self.requirement,
            "variables": list(self.variables),
            "domains": {k: list(v) for k, v in self.domains.items()},
            "acceptable": [
                [[name, value] for name, value in assignment]
                for assignment in self.acceptable
            ],
            "statements": list(self.statements),
            "lifted": self.lifted,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        payload = json.loads(text)
        return cls(
            device=payload["device"],
            requirement=payload["requirement"],
            variables=tuple(payload["variables"]),
            domains={k: tuple(v) for k, v in payload["domains"].items()},
            acceptable=tuple(
                tuple((name, value) for name, value in assignment)
                for assignment in payload["acceptable"]
            ),
            statements=tuple(payload["statements"]),
            lifted=payload["lifted"],
        )


@dataclass
class AuditResult:
    """Outcome of independently re-checking a certificate.

    ``seed`` records the sampling seed the audit ran under (``None``
    for the exhaustive legacy mode), so a verdict can be reproduced
    bit-for-bit from its summary line alone.
    """

    valid: bool
    problems: List[str] = field(default_factory=list)
    seed: Optional[int] = None

    def summary(self) -> str:
        verdict = "VALID" if self.valid else "INVALID"
        line = f"certificate audit: {verdict}"
        if self.seed is not None:
            line += f" (seed {self.seed})"
        if self.valid:
            return line
        lines = [line]
        lines.extend(f"  {problem}" for problem in self.problems)
        return "\n".join(lines)


def make_certificate(explanation: Explanation) -> Certificate:
    """Package an explanation as a certificate."""
    holes = explanation.projected.holes
    acceptable = tuple(
        tuple(sorted((name, str(value)) for name, value in assignment.items()))
        for assignment in explanation.projected.acceptable
    )
    return Certificate(
        device=explanation.device,
        requirement=explanation.requirement,
        variables=tuple(sorted(holes)),
        domains={name: tuple(str(v) for v in hole.domain) for name, hole in holes.items()},
        acceptable=acceptable,
        statements=tuple(format_statement(s) for s in explanation.lift_result.statements),
        lifted=explanation.subspec.lifted,
    )


def audit(
    certificate: Certificate,
    config: NetworkConfig,
    specification: Specification,
    targets: List[FieldRef],
    max_path_length: Optional[int] = None,
    seed: Optional[int] = None,
    sample: int = 16,
) -> AuditResult:
    """Re-check every claim of ``certificate`` from scratch.

    ``targets`` must re-identify the symbolized fields (their hole
    names must match the certificate's variables).  The audit rebuilds
    the acceptable region with a fresh encoder + simulator run and
    compares; if the certificate carries lifted statements, it also
    re-evaluates their filter-level encodings on every accepted
    assignment.

    With an explicit ``seed``, the statement re-check runs over a
    deterministic sample of at most ``sample`` evaluation environments
    (drawn by ``random.Random(seed)`` over the sorted assignment keys,
    so the same seed always checks the same assignments); without one
    it stays exhaustive, byte-identical to the legacy behaviour.
    """
    from .lift import _statement_term
    from .project import project
    from .seed import extract_seed

    result = AuditResult(valid=True, seed=seed)

    sketch, holes = symbolize(config, targets)
    if tuple(sorted(holes)) != certificate.variables:
        result.valid = False
        result.problems.append(
            f"symbolized variables {sorted(holes)} do not match the "
            f"certificate's {list(certificate.variables)}"
        )
        return result

    spec = (
        specification.restricted_to(certificate.requirement)
        if certificate.requirement != "<all>"
        else specification
    )
    seed_spec = extract_seed(sketch, spec, holes, max_path_length)
    projected = project(seed_spec, sketch)
    recomputed = {
        tuple(sorted((name, str(value)) for name, value in assignment.items()))
        for assignment in projected.acceptable
    }
    claimed = set(certificate.acceptable)
    if recomputed != claimed:
        result.valid = False
        missing = claimed - recomputed
        extra = recomputed - claimed
        if missing:
            result.problems.append(
                f"{len(missing)} claimed-acceptable assignment(s) are rejected "
                "on re-check"
            )
        if extra:
            result.problems.append(
                f"{len(extra)} assignment(s) are acceptable on re-check but "
                "missing from the certificate"
            )

    if certificate.lifted and certificate.statements:
        envs = sorted(projected.envs.items())
        if seed is not None and len(envs) > sample:
            import random

            envs = [
                envs[index]
                for index in sorted(
                    random.Random(seed).sample(range(len(envs)), sample)
                )
            ]
        statements = [parse_statement(text) for text in certificate.statements]
        for statement in statements:
            term = _statement_term(statement, sketch, spec, seed_spec)
            if term is None:
                result.valid = False
                result.problems.append(f"statement {statement} cannot be re-encoded")
                continue
            for key, env in envs:
                accepted = key in recomputed
                if accepted and not bool(term.evaluate(env)):
                    result.valid = False
                    result.problems.append(
                        f"statement {statement} fails on accepted assignment {key}"
                    )
                    break
    return result
