"""Versioned round-trip serialization of explanations.

Everything an :class:`~repro.explain.engine.Explanation` *reports* --
seed and simplified constraints, the projected acceptable region with
its evaluation environments, the lifted statements, the final
subspecification, status, timings -- round-trips through plain dicts
(and therefore JSON).  Two things intentionally do not:

* ``SeedSpecification.encoding`` -- the synthesizer's full encoding
  (candidate space, per-group terms, hole registry) is recomputation
  state, not explanation content; restored seeds carry
  ``encoding=None``.
* in-flight objects (governors, instrumentation) -- never part of the
  explanation.

The schema is versioned (:data:`SCHEMA`); loaders reject payloads with
a different schema tag instead of guessing, which lets the persistent
artifact store treat them as plain cache misses.

Terms are encoded with :mod:`repro.smt.serialize` (shared-structure
DAG tables), statements through the specification printer/parser pair
(the same text round-trip :mod:`repro.explain.certificate` relies on),
and domain values (prefixes, communities) as tagged scalars.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bgp.announcement import Community
from ..bgp.sketch import Hole
from ..smt import RewriteStats
from ..smt.serialize import SerializationError, term_from_payload, term_to_payload
from ..spec.parser import parse_statement
from ..spec.printer import format_statement
from ..topology.prefixes import Prefix
from .engine import Explanation, ExplanationStatus
from .lift import LiftResult
from .project import ProjectedSpec
from .seed import SeedSpecification
from .simplifier import SimplifiedSeed
from .subspec import Subspecification

__all__ = [
    "SCHEMA",
    "explanation_to_dict",
    "explanation_from_dict",
    "value_to_payload",
    "value_from_payload",
]

#: Schema tag stamped into every serialized explanation.
SCHEMA = "repro-explanation/1"


# ----------------------------------------------------------------------
# Domain values (hole domains and assignments)
# ----------------------------------------------------------------------

def value_to_payload(value: object) -> object:
    """Encode a hole-domain value as a JSON-safe tagged scalar.

    Booleans, integers and strings pass through; prefixes and
    communities become ``{"$": <tag>, "v": <str>}`` so the loader can
    restore the original type (plain dicts never occur as values).
    """
    if isinstance(value, bool) or isinstance(value, int) or isinstance(value, str):
        return value
    if isinstance(value, Prefix):
        return {"$": "prefix", "v": str(value)}
    if isinstance(value, Community):
        return {"$": "community", "v": str(value)}
    raise SerializationError(f"unsupported domain value {value!r}")


def value_from_payload(payload: object) -> object:
    if isinstance(payload, dict):
        tag = payload.get("$")
        if tag == "prefix":
            return Prefix(str(payload["v"]))
        if tag == "community":
            return Community.parse(str(payload["v"]))
        raise SerializationError(f"unknown value tag in {payload!r}")
    if isinstance(payload, (bool, int, str)):
        return payload
    raise SerializationError(f"unsupported value payload {payload!r}")


def _hole_to_payload(hole: Hole) -> dict:
    return {
        "name": hole.name,
        "domain": [value_to_payload(value) for value in hole.domain],
    }


def _hole_from_payload(payload: dict) -> Hole:
    return Hole(
        str(payload["name"]),
        tuple(value_from_payload(value) for value in payload["domain"]),
    )


def _holes_to_payload(holes: Dict[str, Hole]) -> List[dict]:
    return [_hole_to_payload(holes[name]) for name in sorted(holes)]


def _holes_from_payload(payload: List[dict]) -> Dict[str, Hole]:
    holes = [_hole_from_payload(entry) for entry in payload]
    return {hole.name: hole for hole in holes}


def _assignment_to_payload(assignment: Dict[str, object]) -> dict:
    return {name: value_to_payload(value) for name, value in assignment.items()}


def _assignment_from_payload(payload: dict) -> Dict[str, object]:
    return {name: value_from_payload(value) for name, value in payload.items()}


# ----------------------------------------------------------------------
# Per-stage artifacts
# ----------------------------------------------------------------------

def seed_to_dict(seed: SeedSpecification) -> dict:
    return {
        "constraint": term_to_payload(seed.constraint),
        "holes": _holes_to_payload(seed.holes),
    }


def seed_from_dict(payload: dict) -> SeedSpecification:
    return SeedSpecification(
        constraint=term_from_payload(payload["constraint"]),
        encoding=None,
        holes=_holes_from_payload(payload["holes"]),
    )


def simplified_to_dict(simplified: SimplifiedSeed) -> dict:
    return {
        "term": term_to_payload(simplified.term),
        "stats": {
            "applications": dict(simplified.stats.applications),
            "input_size": simplified.stats.input_size,
            "output_size": simplified.stats.output_size,
            "passes": simplified.stats.passes,
        },
        "input_constraints": simplified.input_constraints,
        "output_constraints": simplified.output_constraints,
    }


def simplified_from_dict(payload: dict) -> SimplifiedSeed:
    stats_payload = payload["stats"]
    return SimplifiedSeed(
        term=term_from_payload(payload["term"]),
        stats=RewriteStats(
            applications={
                str(name): int(count)
                for name, count in stats_payload["applications"].items()
            },
            input_size=int(stats_payload["input_size"]),
            output_size=int(stats_payload["output_size"]),
            passes=int(stats_payload["passes"]),
        ),
        input_constraints=int(payload["input_constraints"]),
        output_constraints=int(payload["output_constraints"]),
    )


def projected_to_dict(projected: ProjectedSpec) -> dict:
    return {
        "holes": _holes_to_payload(projected.holes),
        "acceptable": [
            _assignment_to_payload(assignment) for assignment in projected.acceptable
        ],
        "rejected": [
            _assignment_to_payload(assignment) for assignment in projected.rejected
        ],
        "term": term_to_payload(projected.term),
        # env values are hole values (int or str) plus boolean ``best``
        # valuations -- all JSON scalars already.
        "envs": [
            [[list(pair) for pair in key], dict(env)]
            for key, env in sorted(projected.envs.items())
        ],
    }


def projected_from_dict(payload: dict) -> ProjectedSpec:
    envs: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
    for key_payload, env in payload["envs"]:
        key = tuple((str(name), str(value)) for name, value in key_payload)
        envs[key] = dict(env)
    return ProjectedSpec(
        holes=_holes_from_payload(payload["holes"]),
        acceptable=tuple(
            _assignment_from_payload(entry) for entry in payload["acceptable"]
        ),
        rejected=tuple(
            _assignment_from_payload(entry) for entry in payload["rejected"]
        ),
        term=term_from_payload(payload["term"]),
        envs=envs,
    )


def lift_result_to_dict(result: LiftResult) -> dict:
    return {
        "statements": [format_statement(s) for s in result.statements],
        "lifted": result.lifted,
        "candidates_tried": result.candidates_tried,
        "equivalents": [format_statement(s) for s in result.equivalents],
        "exhausted": result.exhausted,
    }


def lift_result_from_dict(payload: dict) -> LiftResult:
    return LiftResult(
        statements=tuple(parse_statement(text) for text in payload["statements"]),
        lifted=bool(payload["lifted"]),
        candidates_tried=int(payload["candidates_tried"]),
        equivalents=tuple(parse_statement(text) for text in payload["equivalents"]),
        exhausted=bool(payload["exhausted"]),
    )


def subspec_to_dict(subspec: Subspecification) -> dict:
    return {
        "device": subspec.device,
        "requirement": subspec.requirement,
        "statements": [format_statement(s) for s in subspec.statements],
        "lifted": subspec.lifted,
        "low_level": term_to_payload(subspec.low_level),
        "variables": list(subspec.variables),
    }


def subspec_from_dict(payload: dict) -> Subspecification:
    return Subspecification(
        device=str(payload["device"]),
        requirement=str(payload["requirement"]),
        statements=tuple(parse_statement(text) for text in payload["statements"]),
        lifted=bool(payload["lifted"]),
        low_level=term_from_payload(payload["low_level"]),
        variables=tuple(payload["variables"]),
    )


# ----------------------------------------------------------------------
# The whole explanation
# ----------------------------------------------------------------------

def explanation_to_dict(explanation: Explanation) -> dict:
    """Encode an explanation as a JSON-safe dict (schema-stamped)."""
    return {
        "schema": SCHEMA,
        "device": explanation.device,
        "requirement": explanation.requirement,
        "status": explanation.status.value,
        "degradation": explanation.degradation,
        "timings": dict(explanation.timings),
        "seed": seed_to_dict(explanation.seed) if explanation.seed is not None else None,
        "simplified": (
            simplified_to_dict(explanation.simplified)
            if explanation.simplified is not None
            else None
        ),
        "projected": (
            projected_to_dict(explanation.projected)
            if explanation.projected is not None
            else None
        ),
        "lift": (
            lift_result_to_dict(explanation.lift_result)
            if explanation.lift_result is not None
            else None
        ),
        "subspec": subspec_to_dict(explanation.subspec),
    }


def explanation_from_dict(payload: dict) -> Explanation:
    """Inverse of :func:`explanation_to_dict`.

    Raises :class:`~repro.smt.serialize.SerializationError` on a
    schema mismatch (stores treat that as a miss, not an error).
    """
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise SerializationError(
            f"expected schema {SCHEMA!r}, got {payload.get('schema') if isinstance(payload, dict) else payload!r}"
        )
    return Explanation(
        device=str(payload["device"]),
        requirement=str(payload["requirement"]),
        seed=seed_from_dict(payload["seed"]) if payload["seed"] is not None else None,
        simplified=(
            simplified_from_dict(payload["simplified"])
            if payload["simplified"] is not None
            else None
        ),
        projected=(
            projected_from_dict(payload["projected"])
            if payload["projected"] is not None
            else None
        ),
        lift_result=(
            lift_result_from_dict(payload["lift"])
            if payload["lift"] is not None
            else None
        ),
        subspec=subspec_from_dict(payload["subspec"]),
        timings=dict(payload["timings"]),
        status=ExplanationStatus(payload["status"]),
        degradation=payload["degradation"],
    )
