"""Assume-guarantee summaries (paper §5, "High-level summary of the
global behaviors").

The paper observes that a local subspecification is only meaningful
under assumptions about the rest of the network: R3's "deny routes
tagged 600:1" rule protects the preference requirement *only if* R2
actually tags routes learned from P2.  This module makes those
assumptions explicit: for a device under inspection, it derives

* the **guarantee** -- the device's own subspecification, and
* the **assumptions** -- the subspecification of every other managed
  device, computed with the inspected device's configuration held
  concrete (the paper's "view the rest of the network as a single
  component").

The result reads like a modular proof obligation: *given* the
assumptions, the guarantee suffices for the global requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.config import NetworkConfig
from ..spec.ast import Specification
from .engine import Explanation, ExplanationEngine
from .subspec import Subspecification
from .symbolize import ACTION

__all__ = ["AssumeGuaranteeSummary", "summarize"]


@dataclass
class AssumeGuaranteeSummary:
    """The modular reading of one requirement around one device."""

    device: str
    requirement: str
    guarantee: Subspecification
    assumptions: Dict[str, Subspecification] = field(default_factory=dict)
    skipped: Tuple[str, ...] = ()

    def render(self) -> str:
        lines = [
            f"assume-guarantee summary for {self.device} "
            f"(requirement {self.requirement}):",
            "",
            "guarantee (this device):",
        ]
        lines.append(_indent(self.guarantee.render()))
        lines.append("")
        lines.append("assumptions (rest of the managed network):")
        relevant = {
            router: subspec
            for router, subspec in sorted(self.assumptions.items())
            if not subspec.is_empty
        }
        if not relevant:
            lines.append("  (none: no other device is constrained)")
        for router, subspec in relevant.items():
            lines.append(_indent(subspec.render()))
        if self.skipped:
            lines.append(
                f"  (no configuration to inspect on: {', '.join(self.skipped)})"
            )
        return "\n".join(lines)

    @property
    def constrained_others(self) -> Tuple[str, ...]:
        """Other devices that actually carry obligations."""
        return tuple(
            router
            for router, subspec in sorted(self.assumptions.items())
            if not subspec.is_empty
        )

    def __str__(self) -> str:
        return self.render()


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def summarize(
    config: NetworkConfig,
    specification: Specification,
    device: str,
    requirement: str,
    fields: Sequence[str] = (ACTION,),
    max_path_length: Optional[int] = None,
    engine: Optional[ExplanationEngine] = None,
) -> AssumeGuaranteeSummary:
    """Build the assume-guarantee summary around ``device``.

    Every managed router (including ``device``) is explained against
    the named requirement with all other configurations concrete;
    routers with no symbolizable configuration are reported as skipped
    rather than silently omitted.  Pass a shared ``engine`` to reuse
    its memoized answers across calls.
    """
    if engine is None:
        engine = ExplanationEngine(config, specification, max_path_length)
    managed = sorted(specification.managed) or sorted(
        router.name for router in config.topology.routers
    )
    if device not in managed:
        raise ValueError(f"{device!r} is not a managed router")

    guarantee_explanation = engine.explain_router(
        device, fields=fields, requirement=requirement
    )
    assumptions: Dict[str, Subspecification] = {}
    skipped: List[str] = []
    for router in managed:
        if router == device:
            continue
        try:
            explanation = engine.explain_router(
                router, fields=fields, requirement=requirement
            )
        except Exception:
            skipped.append(router)
            continue
        assumptions[router] = explanation.subspec
    return AssumeGuaranteeSummary(
        device=device,
        requirement=requirement,
        guarantee=guarantee_explanation.subspec,
        assumptions=assumptions,
        skipped=tuple(skipped),
    )
