"""Projection of the seed specification onto the symbolized variables.

The simplified seed still mentions low-level encoding variables (the
``best|...`` selection booleans) -- the paper's Section 4(3) observes
exactly this.  To obtain a constraint purely over the device's
variables (the shape of Figure 6c), we *project*: enumerate every
assignment of the symbolized holes, decide for each whether the global
specification holds, and return the acceptable set as a DNF term.

Deciding one assignment is cheap and exact: fill the sketch, run the
concrete control-plane simulation, evaluate the (ground) requirement
terms under the hole values plus the simulated selection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.simulation import ConvergenceError, simulate
from ..bgp.sketch import Hole
from ..obs import Instrumentation
from ..runtime import Governor, ReproError
from ..smt import And, Eq, FALSE, Or, Term, simplify
from .seed import SeedSpecification

__all__ = ["ProjectionError", "ProjectedSpec", "project", "reclassify"]


class ProjectionError(ReproError, RuntimeError):
    """The hole space is too large to enumerate."""


@dataclass
class ProjectedSpec:
    """The acceptable region of the symbolized variables.

    ``acceptable`` lists every hole assignment (by hole name, in domain
    objects) under which the network satisfies the specification;
    ``term`` is the equivalent DNF constraint over the hole variables,
    simplified with the rewrite engine.  ``envs`` caches, per
    assignment key, the full evaluation environment (hole values plus
    simulated selection values) so the lifting search can evaluate
    candidate statements without re-simulating.
    """

    holes: Dict[str, Hole]
    acceptable: Tuple[Dict[str, object], ...]
    rejected: Tuple[Dict[str, object], ...]
    term: Term
    envs: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = field(default_factory=dict)

    @property
    def total_assignments(self) -> int:
        return len(self.acceptable) + len(self.rejected)

    @property
    def is_unconstrained(self) -> bool:
        """Every assignment works: the device is irrelevant to the
        requirement (the paper's Scenario 3: "R3 can do anything")."""
        return not self.rejected

    @property
    def is_unsatisfiable(self) -> bool:
        return not self.acceptable


def _iter_assignments(holes: Mapping[str, Hole]):
    names = sorted(holes)
    domains = [holes[name].domain for name in names]
    for combo in itertools.product(*domains):
        yield dict(zip(names, combo))


def project(
    seed: SeedSpecification,
    sketch: NetworkConfig,
    limit: int = 4096,
    governor: Optional[Governor] = None,
    obs: Optional[Instrumentation] = None,
    recorder=None,
    sim_cache=None,
) -> ProjectedSpec:
    """Enumerate hole assignments and classify each as acceptable.

    ``sim_cache`` plugs in a cross-question
    :class:`~repro.explain.family.SimulationCache`; cached outcomes are
    keyed by the rendered filled configuration and replay their
    recorded transfers, so attaching one never changes a verdict or a
    read-set.

    Raises
    ------
    ProjectionError
        If the hole space exceeds ``limit`` (the paper's remedy:
        "generating and inspecting sub-specifications one variable at
        a time was an effective strategy").
    """
    total = 1
    for hole in seed.holes.values():
        total *= len(hole.domain)
    if total > limit:
        raise ProjectionError(
            f"{total} assignments exceed the projection limit of {limit}; "
            "symbolize fewer fields at a time"
        )

    requirement_terms: List[Term] = []
    for name, terms in seed.encoding.groups.items():
        if name.startswith("requirement:"):
            requirement_terms.extend(terms)
    requirement = And(*requirement_terms)

    acceptable: List[Dict[str, object]] = []
    rejected: List[Dict[str, object]] = []
    envs: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
    for assignment in _iter_assignments(seed.holes):
        if governor is not None:
            governor.checkpoint("project")
        if obs is not None:
            obs.count("project.assignments")
        ok, env = _classify_assignment(
            requirement, assignment, sketch, seed, governor=governor, obs=obs,
            recorder=recorder, sim_cache=sim_cache,
        )
        key = tuple(sorted((name, str(value)) for name, value in assignment.items()))
        if env is not None:
            envs[key] = env
        if ok:
            acceptable.append(assignment)
        else:
            rejected.append(assignment)

    term = _as_dnf(seed, acceptable, rejected)
    return ProjectedSpec(
        holes=dict(seed.holes),
        acceptable=tuple(acceptable),
        rejected=tuple(rejected),
        term=term,
        envs=envs,
    )


def reclassify(
    seed: SeedSpecification,
    projected: ProjectedSpec,
    forced_acceptances=frozenset(),
    forced_rejections=frozenset(),
) -> ProjectedSpec:
    """``projected`` with selected assignments moved across the boundary.

    ``forced_acceptances`` / ``forced_rejections`` are assignment keys
    (the sorted ``(name, str(value))`` tuples used throughout lifting);
    every listed assignment lands on the forced side regardless of its
    original classification, and the DNF term is rebuilt to match.
    This is the audit loop's re-lift seam: counterexamples refuting a
    subspecification become corrections to the acceptable region the
    next lift runs against.
    """
    sides: Dict[Tuple[Tuple[str, str], ...], bool] = {}
    originals: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
    for ok, group in ((True, projected.acceptable), (False, projected.rejected)):
        for assignment in group:
            key = tuple(
                sorted((name, str(value)) for name, value in assignment.items())
            )
            sides[key] = ok
            originals[key] = assignment
    for key in forced_acceptances:
        if key in sides:
            sides[key] = True
    for key in forced_rejections:
        if key in sides:
            sides[key] = False
    acceptable: List[Dict[str, object]] = []
    rejected: List[Dict[str, object]] = []
    for assignment in _iter_assignments(projected.holes):
        key = tuple(
            sorted((name, str(value)) for name, value in assignment.items())
        )
        if key not in sides:
            continue
        (acceptable if sides[key] else rejected).append(originals[key])
    term = _as_dnf(seed, acceptable, rejected)
    return ProjectedSpec(
        holes=dict(projected.holes),
        acceptable=tuple(acceptable),
        rejected=tuple(rejected),
        term=term,
        envs=dict(projected.envs),
    )


def _classify_assignment(
    requirement: Term,
    assignment: Dict[str, object],
    sketch: NetworkConfig,
    seed: SeedSpecification,
    governor: Optional[Governor] = None,
    obs: Optional[Instrumentation] = None,
    recorder=None,
    sim_cache=None,
):
    """(acceptable?, evaluation env) for one hole assignment.

    Non-converging assignments are rejected and yield no environment.
    """
    filled = sketch.fill(assignment)
    try:
        if sim_cache is not None:
            outcome = sim_cache.simulate(
                filled,
                link_cost=seed.encoding.link_cost,
                ibgp=seed.encoding.ibgp,
                governor=governor,
                obs=obs,
                recorder=recorder,
            )
        else:
            outcome = simulate(
                filled,
                link_cost=seed.encoding.link_cost,
                ibgp=seed.encoding.ibgp,
                governor=governor,
                obs=obs,
                recorder=recorder,
            )
    except ConvergenceError:
        return False, None
    env: Dict[str, object] = {}
    for name, value in assignment.items():
        variable = seed.encoding.holes.variable(name)
        env[name] = value if variable.sort.is_int() else str(value)
    # Valuations of the selection variables come from the simulation.
    for key, variable in seed.encoding.best_vars.items():
        candidate = _candidate_of(seed, key)
        selected = outcome.best(candidate.router, candidate.prefix)
        env[variable.name] = (
            selected is not None and selected.path == candidate.path.hops
        )
    return bool(requirement.evaluate(env)), env


def _candidate_of(seed: SeedSpecification, key: str):
    from ..synthesis.space import Candidate
    from ..topology.paths import Path
    from ..topology.prefixes import Prefix

    prefix_text, hops_text = key.split("|", 1)
    return Candidate(Prefix(prefix_text), Path(tuple(hops_text.split("."))))


def _as_dnf(
    seed: SeedSpecification,
    acceptable: List[Dict[str, object]],
    rejected: List[Dict[str, object]],
) -> Term:
    """The acceptable set as a minimized constraint over hole vars.

    Cubes are merged Quine-McCluskey style, generalized to the
    multi-valued domains: whenever a group of cubes agrees on all but
    one variable and that variable's values cover its whole domain, the
    variable is dropped.  This keeps Figure 6c-style outputs factored
    (``Var_Action = permit`` instead of a 4-cube enumeration).
    """
    if not acceptable:
        return FALSE
    if not rejected:
        # Every assignment works: the constraint is vacuous (the
        # paper's Scenario 3 "empty subspecification" case).
        from ..smt import TRUE

        return TRUE
    names = sorted(acceptable[0])
    domains = {name: seed.holes[name].domain for name in names}
    cubes = {tuple((name, str(assignment[name])) for name in names)
             for assignment in acceptable}
    cubes = _merge_cubes(cubes, names, domains)
    terms: List[Term] = []
    for cube in sorted(cubes):
        literals: List[Term] = []
        for name, value in cube:
            variable = seed.encoding.holes.variable(name)
            if variable.sort.is_int():
                literals.append(Eq(variable, int(value)))
            else:
                literals.append(Eq(variable, value))
        terms.append(And(*literals))
    return simplify(Or(*terms))


def _merge_cubes(cubes, names, domains):
    """Drop a variable from cube groups that cover its full domain.

    Cubes are frozen tuples of (name, str(value)) literals; a cube may
    omit variables that were already merged away.
    """
    current = {frozenset(cube) for cube in cubes}
    changed = True
    while changed:
        changed = False
        for name in names:
            domain_values = {str(value) for value in domains[name]}
            groups: Dict[frozenset, set] = {}
            for cube in current:
                literal = next((lit for lit in cube if lit[0] == name), None)
                if literal is None:
                    continue
                rest = frozenset(lit for lit in cube if lit[0] != name)
                groups.setdefault(rest, set()).add(literal[1])
            for rest, values in groups.items():
                if values == domain_values:
                    for value in values:
                        current.discard(rest | {(name, value)})
                    current.add(rest)
                    changed = True
    # Remove cubes subsumed by more general ones.
    minimal = set()
    for cube in sorted(current, key=len):
        if not any(other <= cube for other in minimal):
            minimal.add(cube)
    return {tuple(sorted(cube)) for cube in minimal}
