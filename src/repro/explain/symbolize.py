"""Partial symbolization: concrete config fields -> symbolic variables.

This is step (1) of the paper's generation flow (Figure 6b): selected
fields of the device under explanation are replaced by holes
(``Var_Attr``, ``Var_Val``, ``Var_Action``, ``Var_Param`` in the
paper's naming), while the rest of the network stays concrete.

The hole *domain* determines the question being asked: symbolizing a
line's action over ``{permit, deny}`` asks "why must this line deny?";
symbolizing a match value over all prefixes in the network asks "why
must this line match this particular prefix?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.announcement import Community
from ..bgp.config import NetworkConfig
from ..bgp.routemap import (
    DENY,
    MatchAttribute,
    PERMIT,
    RouteMap,
    RouteMapLine,
    SetAttribute,
    SetClause,
)
from ..bgp.sketch import Hole, is_hole
from ..topology.prefixes import Prefix

__all__ = ["FieldRef", "SymbolizationError", "symbolize", "symbolize_line", "symbolize_router", "default_domain"]

# Symbolizable field kinds.
ACTION = "action"
MATCH_ATTR = "match-attr"
MATCH_VALUE = "match-value"
SET_ATTR = "set-attr"
SET_VALUE = "set-value"

_FIELDS = (ACTION, MATCH_ATTR, MATCH_VALUE, SET_ATTR, SET_VALUE)


class SymbolizationError(ValueError):
    """Raised for malformed symbolization requests."""


@dataclass(frozen=True)
class FieldRef:
    """Identifies one configuration field of one route-map line.

    ``clause`` indexes into the line's set clauses and is only
    meaningful for ``set-attr`` / ``set-value`` fields.
    """

    router: str
    direction: str
    neighbor: str
    seq: int
    field: str
    clause: int = 0

    def __post_init__(self) -> None:
        if self.field not in _FIELDS:
            raise SymbolizationError(f"unknown field kind {self.field!r}")

    @classmethod
    def from_hole_name(cls, name: str) -> "FieldRef":
        """Invert :meth:`hole_name` (used when auditing certificates)."""
        prefixes = {
            "Var_Action[": ACTION,
            "Var_Attr[": MATCH_ATTR,
            "Var_Val[": MATCH_VALUE,
            "Var_SetAttr[": SET_ATTR,
            "Var_Param[": SET_VALUE,
        }
        for prefix, kind in prefixes.items():
            if name.startswith(prefix) and name.endswith("]"):
                inner = name[len(prefix):-1]
                parts = inner.split(".")
                if kind in (SET_ATTR, SET_VALUE):
                    if len(parts) != 5:
                        raise SymbolizationError(f"malformed hole name {name!r}")
                    router, direction, neighbor, seq, clause = parts
                    return cls(router, direction, neighbor, int(seq), kind, int(clause))
                if len(parts) != 4:
                    raise SymbolizationError(f"malformed hole name {name!r}")
                router, direction, neighbor, seq = parts
                return cls(router, direction, neighbor, int(seq), kind)
        raise SymbolizationError(f"not a symbolization hole name: {name!r}")

    def hole_name(self) -> str:
        """The paper-style variable name for this field."""
        base = {
            ACTION: "Var_Action",
            MATCH_ATTR: "Var_Attr",
            MATCH_VALUE: "Var_Val",
            SET_ATTR: "Var_SetAttr",
            SET_VALUE: "Var_Param",
        }[self.field]
        suffix = f"{self.router}.{self.direction}.{self.neighbor}.{self.seq}"
        if self.field in (SET_ATTR, SET_VALUE):
            suffix += f".{self.clause}"
        return f"{base}[{suffix}]"

    def __str__(self) -> str:
        return self.hole_name()


def default_domain(ref: FieldRef, config: NetworkConfig) -> Tuple[object, ...]:
    """A sensible finite domain for a symbolized field.

    Domains are drawn from the network itself: all originated prefixes
    for match values, all communities mentioned anywhere for community
    values, the device's neighbors for next hops, and a small ladder of
    local preferences.
    """
    if ref.field == ACTION:
        return (PERMIT, DENY)
    if ref.field == MATCH_ATTR:
        return tuple(MatchAttribute.ALL)
    if ref.field == SET_ATTR:
        return tuple(SetAttribute.ALL)
    topology = config.topology
    prefixes: List[object] = list(topology.all_prefixes())
    communities = _all_communities(config)
    neighbors = list(topology.neighbors(ref.router))
    if ref.field == MATCH_VALUE:
        return tuple(prefixes + communities + neighbors)
    # SET_VALUE: narrow to the clause's concrete attribute when known,
    # otherwise (symbolized attribute) offer the mixed Var_Param domain.
    attribute = _clause_attribute(ref, config)
    lp_ladder: List[object] = [50, 100, 200, 300]
    if attribute == SetAttribute.LOCAL_PREF or attribute == SetAttribute.MED:
        return tuple(lp_ladder)
    if attribute == SetAttribute.COMMUNITY:
        return tuple(communities)
    if attribute == SetAttribute.NEXT_HOP:
        current = _clause_value(ref, config)
        extra = [current] if isinstance(current, str) and current not in neighbors else []
        return tuple(neighbors + extra)
    return tuple(lp_ladder + communities + neighbors)


def _clause_attribute(ref: FieldRef, config: NetworkConfig) -> object:
    routemap = config.get_map(ref.router, ref.direction, ref.neighbor)
    if routemap is None:
        return None
    line = routemap.line(ref.seq)
    if ref.clause >= len(line.sets):
        return None
    return line.sets[ref.clause].attribute


def _clause_value(ref: FieldRef, config: NetworkConfig) -> object:
    routemap = config.get_map(ref.router, ref.direction, ref.neighbor)
    if routemap is None:
        return None
    line = routemap.line(ref.seq)
    if ref.clause >= len(line.sets):
        return None
    return line.sets[ref.clause].value


def _all_communities(config: NetworkConfig) -> List[object]:
    found: Dict[str, Community] = {}
    for router in config.topology.router_names:
        router_config = config.router_config(router)
        for direction, neighbor in router_config.sessions():
            routemap = router_config.get_map(direction, neighbor)
            assert routemap is not None
            for line in routemap.lines:
                for value in (line.match_value, *(c.value for c in line.sets)):
                    if isinstance(value, Community):
                        found[str(value)] = value
    if not found:
        found["100:2"] = Community(100, 2)
    return [found[key] for key in sorted(found)]


def symbolize(
    config: NetworkConfig,
    targets: Sequence[FieldRef],
    domains: Optional[Dict[FieldRef, Tuple[object, ...]]] = None,
) -> Tuple[NetworkConfig, Dict[str, Hole]]:
    """Replace the targeted fields with holes.

    Returns the partially symbolic configuration and a map from hole
    name to hole.  The input configuration must be fully concrete.
    """
    if config.has_holes():
        raise SymbolizationError("symbolize expects a fully concrete configuration")
    if not targets:
        raise SymbolizationError("no fields to symbolize")
    sketch = config.copy()
    holes: Dict[str, Hole] = {}
    for ref in targets:
        routemap = sketch.get_map(ref.router, ref.direction, ref.neighbor)
        if routemap is None:
            raise SymbolizationError(
                f"{ref.router} has no {ref.direction} route-map toward {ref.neighbor}"
            )
        line = routemap.line(ref.seq)
        domain = (domains or {}).get(ref) or default_domain(ref, config)
        hole = Hole(ref.hole_name(), tuple(domain))
        if hole.name in holes:
            raise SymbolizationError(f"duplicate symbolization of {ref}")
        holes[hole.name] = hole
        new_line = _replace_field(line, ref, hole)
        sketch.set_map(
            ref.router, ref.direction, ref.neighbor, routemap.replace_line(ref.seq, new_line)
        )
    return sketch, holes


def _replace_field(line: RouteMapLine, ref: FieldRef, hole: Hole) -> RouteMapLine:
    if ref.field == ACTION:
        return RouteMapLine(
            seq=line.seq,
            action=hole,
            match_attr=line.match_attr,
            match_value=line.match_value,
            sets=line.sets,
        )
    if ref.field == MATCH_ATTR:
        return RouteMapLine(
            seq=line.seq,
            action=line.action,
            match_attr=hole,
            match_value=line.match_value,
            sets=line.sets,
        )
    if ref.field == MATCH_VALUE:
        return RouteMapLine(
            seq=line.seq,
            action=line.action,
            match_attr=line.match_attr,
            match_value=hole,
            sets=line.sets,
        )
    if ref.clause >= len(line.sets):
        raise SymbolizationError(
            f"line {line.seq} has no set clause #{ref.clause}"
        )
    clauses = list(line.sets)
    clause = clauses[ref.clause]
    if ref.field == SET_ATTR:
        clauses[ref.clause] = SetClause(hole, clause.value)
    else:
        clauses[ref.clause] = SetClause(clause.attribute, hole)
    return RouteMapLine(
        seq=line.seq,
        action=line.action,
        match_attr=line.match_attr,
        match_value=line.match_value,
        sets=tuple(clauses),
    )


def symbolize_line(
    config: NetworkConfig,
    router: str,
    direction: str,
    neighbor: str,
    seq: int,
    fields: Sequence[str] = (ACTION,),
) -> Tuple[NetworkConfig, Dict[str, Hole]]:
    """Symbolize the given fields of one line."""
    refs = [FieldRef(router, direction, neighbor, seq, field) for field in fields]
    return symbolize(config, refs)


def symbolize_router(
    config: NetworkConfig,
    router: str,
    fields: Sequence[str] = (ACTION,),
) -> Tuple[NetworkConfig, Dict[str, Hole]]:
    """Symbolize the given field kinds on every line of every map of a
    router (the "explain this whole device" question)."""
    refs: List[FieldRef] = []
    router_config = config.router_config(router)
    for direction, neighbor in router_config.sessions():
        routemap = router_config.get_map(direction, neighbor)
        assert routemap is not None
        for line in routemap.lines:
            for field in fields:
                if field in (SET_ATTR, SET_VALUE):
                    for clause_index in range(len(line.sets)):
                        refs.append(
                            FieldRef(router, direction, neighbor, line.seq, field, clause_index)
                        )
                else:
                    refs.append(FieldRef(router, direction, neighbor, line.seq, field))
    if not refs:
        raise SymbolizationError(f"{router} has no configuration lines to symbolize")
    return symbolize(config, refs)
