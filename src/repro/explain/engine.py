"""The end-to-end explanation engine (paper Figure 6).

Given a concrete synthesized configuration, a global specification and
a question ("explain these fields of this router, for this
requirement"), the engine runs the four-step pipeline:

1. partial symbolization        (:mod:`repro.explain.symbolize`)
2. seed specification           (:mod:`repro.explain.seed`)
3. rewrite-rule simplification  (:mod:`repro.explain.simplifier`)
4. projection + lifting         (:mod:`repro.explain.project`,
                                 :mod:`repro.explain.lift`)

and returns an :class:`Explanation` bundling every intermediate
artifact, sized and timed for the benchmark harness.

When a :class:`~repro.runtime.Governor` is attached, the pipeline
*degrades gracefully* instead of crashing on an exhausted deadline or
budget: the fallback chain is exact lift -> partial lift over the
explored candidates -> raw simplified constraints, and the resulting
:class:`Explanation` carries an explicit :class:`ExplanationStatus`
plus per-stage budget accounting in ``timings``.  Without a governor
the behaviour is byte-identical to the ungoverned pipeline and every
explanation reports ``EXACT``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.sketch import Hole
from ..obs import Instrumentation
from ..runtime import GOVERNED_ERRORS, Governor
from ..smt import RewriteRule, RewriteStats, TRUE
from ..spec.ast import Specification
from .lift import LiftResult, lift
from .project import ProjectedSpec, project
from .seed import SeedSpecification, extract_seed
from .simplifier import SimplifiedSeed, simplify_seed
from .subspec import Subspecification
from .symbolize import ACTION, FieldRef, symbolize, symbolize_line, symbolize_router

__all__ = ["Explanation", "ExplanationEngine", "ExplanationStatus"]


class ExplanationStatus(enum.Enum):
    """How complete an explanation run was under its resource limits.

    ``EXACT``
        Every stage ran to completion (always the case without a
        governor).
    ``DEGRADED_LIFT``
        A governed limit fired, but a lifted subspecification was still
        found over the candidates explored before the interrupt.
    ``DEGRADED_RAW``
        Lifting (or the projection it needs) was cut short; the
        explanation falls back to the raw simplified constraints.
    ``FAILED``
        Not even a seed specification could be produced within the
        limits; the explanation carries no artifacts.
    """

    EXACT = "EXACT"
    DEGRADED_LIFT = "DEGRADED_LIFT"
    DEGRADED_RAW = "DEGRADED_RAW"
    FAILED = "FAILED"

    @property
    def degraded(self) -> bool:
        return self is not ExplanationStatus.EXACT


@dataclass
class Explanation:
    """Everything produced while answering one explanation question.

    Artifacts that a governed run could not produce are ``None`` (only
    possible when ``status`` is not ``EXACT``); ``degradation`` then
    holds a human-readable account of what was cut short.
    """

    device: str
    requirement: str
    seed: Optional[SeedSpecification]
    simplified: Optional[SimplifiedSeed]
    projected: Optional[ProjectedSpec]
    lift_result: Optional[LiftResult]
    subspec: Subspecification
    timings: Dict[str, float] = field(default_factory=dict)
    status: ExplanationStatus = ExplanationStatus.EXACT
    degradation: Optional[str] = None

    @property
    def seed_constraints(self) -> int:
        return self.seed.num_constraints if self.seed is not None else 0

    @property
    def simplified_constraints(self) -> int:
        return self.simplified.output_constraints if self.simplified is not None else 0

    @property
    def reduction_factor(self) -> float:
        return self.simplified.constraint_reduction if self.simplified is not None else 1.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding; see :mod:`repro.explain.serialize`."""
        from .serialize import explanation_to_dict

        return explanation_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Explanation":
        from .serialize import explanation_from_dict

        return explanation_from_dict(payload)

    def report(self) -> str:
        """A human-readable account of the whole run."""
        if self.seed is None or self.simplified is None or self.projected is None:
            lines = [
                f"explanation for {self.device} "
                f"(requirement {self.requirement}):",
                f"  status               : {self.status.value}"
                + (f" ({self.degradation})" if self.degradation else ""),
                "",
                self.subspec.render(),
            ]
            return "\n".join(lines)
        lines = [
            f"explanation for {self.device} "
            f"(requirement {self.requirement}):",
            f"  symbolized variables : {', '.join(sorted(self.projected.holes))}",
            f"  seed specification   : {self.seed.num_constraints} constraints, "
            f"{self.seed.size} nodes",
            f"  simplified           : {self.simplified.output_constraints} constraints, "
            f"{self.simplified.term.size()} nodes "
            f"(x{self.reduction_factor:.0f} reduction)",
            f"  acceptable configs   : {len(self.projected.acceptable)} / "
            f"{self.projected.total_assignments}",
        ]
        if self.status.degraded:
            lines.insert(
                1,
                f"  status               : {self.status.value}"
                + (f" ({self.degradation})" if self.degradation else ""),
            )
        lines.extend(["", self.subspec.render()])
        return "\n".join(lines)


class ExplanationEngine:
    """Answers explanation questions about a synthesized configuration.

    >>> engine = ExplanationEngine(config, specification)
    ... # doctest: +SKIP
    >>> explanation = engine.explain_router("R1", requirement="Req1")
    ... # doctest: +SKIP

    ``governor`` bounds every stage of every question this engine
    answers; all questions share its deadline and budget.

    ``obs`` attaches an :class:`~repro.obs.Instrumentation` bundle: each
    pipeline stage runs inside a span (``seed``, ``simplify``,
    ``project``, ``lift``) and the hot paths record work counters with
    stage attribution.  The public ``Explanation.timings`` mapping is a
    view derived from those spans, so its keys are unchanged.  When
    both ``obs`` and ``governor`` are given, the instrumentation also
    subscribes to the governor's checkpoint stream.

    ``stage_store`` plugs in a per-question artifact store (duck-typed:
    ``load(stage) -> Optional[dict]`` and ``save(stage, payload)``).
    Completed stage artifacts (``seed``, ``simplify``, ``projected``,
    ``lift``) are saved through it and later runs resume mid-pipeline
    from whatever loads -- the persistence behind
    :mod:`repro.farm.store`.  The store must be scoped to a single
    question (the farm keys it by job); degraded stage outputs are
    never saved.

    ``recorder`` observes every route-map transfer the pipeline applies
    (duck-typed: ``symbolic(...)`` / ``concrete(...)``; see
    :class:`repro.farm.readset.TransferRecorder`), capturing the
    rest-of-network slice a question actually reads so the farm can
    invalidate cached answers precisely.
    """

    def __init__(
        self,
        config: NetworkConfig,
        specification: Specification,
        max_path_length: Optional[int] = None,
        rules: Optional[Sequence[RewriteRule]] = None,
        projection_limit: int = 4096,
        link_cost=None,
        ibgp: bool = False,
        governor: Optional[Governor] = None,
        obs: Optional[Instrumentation] = None,
        stage_store=None,
        recorder=None,
        shared=None,
    ) -> None:
        if config.has_holes():
            raise ValueError("the explanation engine expects a concrete configuration")
        if shared is not None and governor is not None:
            # Sharing is only sound ungoverned: a cached stage result
            # reflects no budget consumption, so serving it under a
            # deadline/budget would make answers depend on cache state.
            raise ValueError("shared caches cannot be combined with a governor")
        self.config = config
        self.specification = specification
        self.max_path_length = max_path_length
        self.rules = rules
        self.projection_limit = projection_limit
        self.link_cost = link_cost
        self.ibgp = ibgp
        self.governor = governor
        self.obs = obs
        self.stage_store = stage_store
        self.recorder = recorder
        #: Optional :class:`~repro.explain.family.SharedCaches`: the
        #: cross-question cache layer the farm threads through sibling
        #: jobs of one batch.  Stage outputs are byte-identical with or
        #: without it (sharing works by memoized recomputation over
        #: hash-consed terms, never by substitution).
        self.shared = shared
        if obs is not None and governor is not None:
            obs.watch(governor)
        # Questions are pure functions of (symbolized fields,
        # requirement) for a fixed engine, so answers are memoized --
        # the per-requirement reports re-ask the same questions.  Only
        # EXACT answers are cached: a degraded answer reflects the
        # budget state at the time it was cut short, not the question.
        self._cache: Dict[tuple, Explanation] = {}

    # ------------------------------------------------------------------

    def explain(
        self,
        device: str,
        targets: Sequence[FieldRef],
        requirement: Optional[str] = None,
    ) -> Explanation:
        """Explain the given fields of ``device``.

        ``requirement`` restricts the question to one requirement block
        (Scenario 3's "ask about each requirement individually"); the
        default explains against the whole specification.
        """
        sketch, holes = symbolize(self.config, list(targets))
        return self._run(device, sketch, holes, requirement)

    def explain_line(
        self,
        device: str,
        direction: str,
        neighbor: str,
        seq: int,
        fields: Sequence[str] = (ACTION,),
        requirement: Optional[str] = None,
    ) -> Explanation:
        """Explain selected fields of a single route-map line."""
        sketch, holes = symbolize_line(self.config, device, direction, neighbor, seq, fields)
        return self._run(device, sketch, holes, requirement)

    def explain_router(
        self,
        device: str,
        fields: Sequence[str] = (ACTION,),
        requirement: Optional[str] = None,
    ) -> Explanation:
        """Explain a field kind across every line of a router."""
        sketch, holes = symbolize_router(self.config, device, fields)
        return self._run(device, sketch, holes, requirement)

    def relift(
        self,
        device: str,
        sketch: NetworkConfig,
        holes: Dict[str, Hole],
        requirement: Optional[str] = None,
        forced_acceptances=frozenset(),
        forced_rejections=frozenset(),
    ) -> Explanation:
        """Re-run projection + lifting under counterexample constraints.

        This is the audit loop's feedback seam: ``forced_acceptances``
        and ``forced_rejections`` are assignment keys (sorted
        ``(name, str(value))`` tuples) that an adversarial audit proved
        belong on the other side of the acceptable region, and the lift
        search re-runs against the corrected region.

        The run is deliberately isolated from the normal pipeline's
        memoization: it never reads or writes the stage store and never
        lands in the engine's answer cache, so corrected artifacts can
        never shadow (or be shadowed by) the canonical ones.
        """
        from .project import reclassify

        spec = (
            self.specification.restricted_to(requirement)
            if requirement is not None
            else self.specification
        )
        requirement_name = requirement if requirement is not None else "<all>"
        obs = self.obs if self.obs is not None else Instrumentation()
        timings: Dict[str, float] = {}
        with obs.span("seed") as span:
            seed = extract_seed(
                sketch, spec, holes, self.max_path_length, self.link_cost,
                self.ibgp, governor=self.governor, obs=self.obs,
                recorder=self.recorder,
            )
        timings["seed"] = span.duration
        with obs.span("project") as span:
            projected = project(
                seed, sketch, limit=self.projection_limit,
                governor=self.governor, obs=self.obs, recorder=self.recorder,
            )
            corrected = reclassify(
                seed, projected,
                forced_acceptances=forced_acceptances,
                forced_rejections=forced_rejections,
            )
        timings["project"] = span.duration
        with obs.span("lift") as span:
            lift_result = lift(
                device, sketch, spec, seed, corrected, corrected.envs,
                governor=self.governor, obs=self.obs, recorder=self.recorder,
            )
        timings["lift"] = span.duration
        lifted = lift_result.lifted
        subspec = Subspecification(
            device=device,
            requirement=requirement_name,
            statements=lift_result.statements if lifted else (),
            lifted=lifted,
            low_level=corrected.term,
            variables=tuple(sorted(holes)),
        )
        return Explanation(
            device=device,
            requirement=requirement_name,
            seed=seed,
            simplified=None,
            projected=corrected,
            lift_result=lift_result,
            subspec=subspec,
            timings=timings,
            status=ExplanationStatus.EXACT,
        )

    # ------------------------------------------------------------------

    def _cache_key(self, holes: Dict[str, Hole], requirement_name: str) -> tuple:
        """The memoization key for one question.

        Beyond the hole names and requirement, the key pins everything
        that can change the *answer*: the hole domains (two questions
        may symbolize the same fields over different value sets) and
        the engine options/governor limits -- so answers computed under
        one configuration of the engine are never served for another.
        """
        rules = (
            tuple(rule.name for rule in self.rules) if self.rules is not None else None
        )
        governor_fp = None
        if self.governor is not None:
            deadline = (
                self.governor.deadline.seconds
                if self.governor.deadline is not None
                else None
            )
            budget = (
                tuple(
                    sorted(
                        (kind, limit)
                        for kind, limit in self.governor.budget.limits.items()
                        if limit is not None
                    )
                )
                if self.governor.budget is not None
                else None
            )
            governor_fp = (deadline, budget)
        options = (
            self.max_path_length,
            self.projection_limit,
            bool(self.ibgp),
            id(self.link_cost) if self.link_cost is not None else None,
            rules,
            governor_fp,
        )
        domains = tuple(
            (name, tuple(str(value) for value in holes[name].domain))
            for name in sorted(holes)
        )
        return (domains, requirement_name, options)

    def _load_stage(self, stage: str) -> Optional[dict]:
        """A stored artifact payload for ``stage``, or ``None``."""
        if self.stage_store is None:
            return None
        payload = self.stage_store.load(stage)
        if payload is not None and self.obs is not None:
            self.obs.count(f"engine.stage_hits.{stage}")
        return payload

    def _save_stage(self, stage: str, payload: dict) -> None:
        if self.stage_store is not None:
            self.stage_store.save(stage, payload)

    def _run(
        self,
        device: str,
        sketch: NetworkConfig,
        holes: Dict[str, Hole],
        requirement: Optional[str],
    ) -> Explanation:
        spec = (
            self.specification.restricted_to(requirement)
            if requirement is not None
            else self.specification
        )
        requirement_name = requirement if requirement is not None else "<all>"
        cache_key = self._cache_key(holes, requirement_name)
        cached = self._cache.get(cache_key)
        if cached is not None:
            if self.obs is not None:
                self.obs.count("engine.cache_hits")
            return cached
        governor = self.governor
        # Stage timings are derived from spans.  A private throwaway
        # Instrumentation keeps the span machinery (and therefore the
        # timing code path) identical when the engine is uninstrumented;
        # the hot paths still receive ``self.obs`` (possibly ``None``).
        obs = self.obs if self.obs is not None else Instrumentation()
        timings: Dict[str, float] = {}
        degradations = []

        seed_error: Optional[BaseException] = None
        seed: Optional[SeedSpecification] = None
        with obs.span("seed") as span:
            try:
                if self.shared is not None:
                    seed = self.shared.seed_for(
                        sketch, holes, requirement, obs=self.obs,
                        recorder=self.recorder,
                    )
                else:
                    seed = extract_seed(
                        sketch, spec, holes, self.max_path_length, self.link_cost,
                        self.ibgp, governor=governor, obs=self.obs,
                        recorder=self.recorder,
                    )
            except GOVERNED_ERRORS as exc:
                seed_error = exc
        timings["seed"] = span.duration
        if seed is not None and self.stage_store is not None:
            from .serialize import seed_to_dict

            self._save_stage("seed", seed_to_dict(seed))
        if seed is None:
            return self._finish(
                Explanation(
                    device=device,
                    requirement=requirement_name,
                    seed=None,
                    simplified=None,
                    projected=None,
                    lift_result=None,
                    subspec=Subspecification(
                        device=device,
                        requirement=requirement_name,
                        statements=(),
                        lifted=False,
                        low_level=TRUE,
                        variables=tuple(sorted(holes)),
                    ),
                    timings=timings,
                    status=ExplanationStatus.FAILED,
                    degradation=f"seed extraction interrupted: {seed_error}",
                ),
                cache_key,
            )

        with obs.span("simplify") as span:
            stored = self._load_stage("simplify")
            if stored is not None:
                from .serialize import simplified_from_dict

                simplified = simplified_from_dict(stored)
            else:
                try:
                    simplified = simplify_seed(
                        seed, rules=self.rules, governor=governor, obs=self.obs
                    )
                    from .serialize import simplified_to_dict

                    self._save_stage("simplify", simplified_to_dict(simplified))
                except GOVERNED_ERRORS as exc:
                    # Fall back to the unsimplified seed constraint; later
                    # stages do not depend on the simplified term.
                    simplified = SimplifiedSeed(
                        term=seed.constraint,
                        stats=RewriteStats(
                            input_size=seed.size, output_size=seed.size
                        ),
                        input_constraints=seed.num_constraints,
                        output_constraints=seed.num_constraints,
                    )
                    degradations.append(f"simplification interrupted: {exc}")
        timings["simplify"] = span.duration

        projected: Optional[ProjectedSpec] = None
        lift_result: Optional[LiftResult] = None
        with obs.span("project") as span:
            stored = self._load_stage("projected")
            if stored is not None:
                from .serialize import projected_from_dict

                projected = projected_from_dict(stored)
            else:
                try:
                    projected = project(
                        seed, sketch, limit=self.projection_limit, governor=governor,
                        obs=self.obs, recorder=self.recorder,
                        sim_cache=(
                            self.shared.simulations
                            if self.shared is not None
                            else None
                        ),
                    )
                    from .serialize import projected_to_dict

                    self._save_stage("projected", projected_to_dict(projected))
                except GOVERNED_ERRORS as exc:
                    degradations.append(f"projection interrupted: {exc}")
        timings["project"] = span.duration

        with obs.span("lift") as span:
            if projected is not None:
                stored = self._load_stage("lift")
                if stored is not None:
                    from .serialize import lift_result_from_dict

                    lift_result = lift_result_from_dict(stored)
                else:
                    lift_result = lift(
                        device, sketch, spec, seed, projected, projected.envs,
                        governor=governor, obs=self.obs, recorder=self.recorder,
                        term_cache=(
                            self.shared.term_cache_for(holes)
                            if self.shared is not None
                            else None
                        ),
                        transfer_cache=(
                            self.shared.transfers
                            if self.shared is not None
                            else None
                        ),
                    )
                    if lift_result.exhausted:
                        degradations.append("lift search interrupted")
                    else:
                        from .serialize import lift_result_to_dict

                        self._save_stage("lift", lift_result_to_dict(lift_result))
        timings["lift"] = span.duration

        if lift_result is not None and (lift_result.lifted or not degradations):
            statements = lift_result.statements
            lifted = lift_result.lifted
            low_level = projected.term
        else:
            # Raw fallback: the best constraint-level artifact we have.
            statements = ()
            lifted = False
            low_level = projected.term if projected is not None else simplified.term

        if not degradations:
            status = ExplanationStatus.EXACT
        elif lift_result is not None and lift_result.lifted:
            status = ExplanationStatus.DEGRADED_LIFT
        else:
            status = ExplanationStatus.DEGRADED_RAW

        subspec = Subspecification(
            device=device,
            requirement=requirement_name,
            statements=statements,
            lifted=lifted,
            low_level=low_level,
            variables=tuple(sorted(holes)),
        )
        explanation = Explanation(
            device=device,
            requirement=requirement_name,
            seed=seed,
            simplified=simplified,
            projected=projected,
            lift_result=lift_result,
            subspec=subspec,
            timings=timings,
            status=status,
            degradation="; ".join(degradations) if degradations else None,
        )
        return self._finish(explanation, cache_key)

    def _finish(self, explanation: Explanation, cache_key: tuple) -> Explanation:
        """Stamp budget accounting and cache exact answers."""
        if self.governor is not None:
            for name, value in self.governor.accounting().items():
                explanation.timings[name] = value
        if explanation.status is ExplanationStatus.EXACT:
            self._cache[cache_key] = explanation
        return explanation
