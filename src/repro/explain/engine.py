"""The end-to-end explanation engine (paper Figure 6).

Given a concrete synthesized configuration, a global specification and
a question ("explain these fields of this router, for this
requirement"), the engine runs the four-step pipeline:

1. partial symbolization        (:mod:`repro.explain.symbolize`)
2. seed specification           (:mod:`repro.explain.seed`)
3. rewrite-rule simplification  (:mod:`repro.explain.simplifier`)
4. projection + lifting         (:mod:`repro.explain.project`,
                                 :mod:`repro.explain.lift`)

and returns an :class:`Explanation` bundling every intermediate
artifact, sized and timed for the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.sketch import Hole
from ..smt import RewriteRule
from ..spec.ast import Specification
from .lift import LiftResult, lift
from .project import ProjectedSpec, project
from .seed import SeedSpecification, extract_seed
from .simplifier import SimplifiedSeed, simplify_seed
from .subspec import Subspecification
from .symbolize import ACTION, FieldRef, symbolize, symbolize_line, symbolize_router

__all__ = ["Explanation", "ExplanationEngine"]


@dataclass
class Explanation:
    """Everything produced while answering one explanation question."""

    device: str
    requirement: str
    seed: SeedSpecification
    simplified: SimplifiedSeed
    projected: ProjectedSpec
    lift_result: LiftResult
    subspec: Subspecification
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def seed_constraints(self) -> int:
        return self.seed.num_constraints

    @property
    def simplified_constraints(self) -> int:
        return self.simplified.output_constraints

    @property
    def reduction_factor(self) -> float:
        return self.simplified.constraint_reduction

    def report(self) -> str:
        """A human-readable account of the whole run."""
        lines = [
            f"explanation for {self.device} "
            f"(requirement {self.requirement}):",
            f"  symbolized variables : {', '.join(sorted(self.projected.holes))}",
            f"  seed specification   : {self.seed.num_constraints} constraints, "
            f"{self.seed.size} nodes",
            f"  simplified           : {self.simplified.output_constraints} constraints, "
            f"{self.simplified.term.size()} nodes "
            f"(x{self.reduction_factor:.0f} reduction)",
            f"  acceptable configs   : {len(self.projected.acceptable)} / "
            f"{self.projected.total_assignments}",
            "",
            self.subspec.render(),
        ]
        return "\n".join(lines)


class ExplanationEngine:
    """Answers explanation questions about a synthesized configuration.

    >>> engine = ExplanationEngine(config, specification)
    ... # doctest: +SKIP
    >>> explanation = engine.explain_router("R1", requirement="Req1")
    ... # doctest: +SKIP
    """

    def __init__(
        self,
        config: NetworkConfig,
        specification: Specification,
        max_path_length: Optional[int] = None,
        rules: Optional[Sequence[RewriteRule]] = None,
        projection_limit: int = 4096,
        link_cost=None,
        ibgp: bool = False,
    ) -> None:
        if config.has_holes():
            raise ValueError("the explanation engine expects a concrete configuration")
        self.config = config
        self.specification = specification
        self.max_path_length = max_path_length
        self.rules = rules
        self.projection_limit = projection_limit
        self.link_cost = link_cost
        self.ibgp = ibgp
        # Questions are pure functions of (symbolized fields,
        # requirement) for a fixed engine, so answers are memoized --
        # the per-requirement reports re-ask the same questions.
        self._cache: Dict[tuple, Explanation] = {}

    # ------------------------------------------------------------------

    def explain(
        self,
        device: str,
        targets: Sequence[FieldRef],
        requirement: Optional[str] = None,
    ) -> Explanation:
        """Explain the given fields of ``device``.

        ``requirement`` restricts the question to one requirement block
        (Scenario 3's "ask about each requirement individually"); the
        default explains against the whole specification.
        """
        sketch, holes = symbolize(self.config, list(targets))
        return self._run(device, sketch, holes, requirement)

    def explain_line(
        self,
        device: str,
        direction: str,
        neighbor: str,
        seq: int,
        fields: Sequence[str] = (ACTION,),
        requirement: Optional[str] = None,
    ) -> Explanation:
        """Explain selected fields of a single route-map line."""
        sketch, holes = symbolize_line(self.config, device, direction, neighbor, seq, fields)
        return self._run(device, sketch, holes, requirement)

    def explain_router(
        self,
        device: str,
        fields: Sequence[str] = (ACTION,),
        requirement: Optional[str] = None,
    ) -> Explanation:
        """Explain a field kind across every line of a router."""
        sketch, holes = symbolize_router(self.config, device, fields)
        return self._run(device, sketch, holes, requirement)

    # ------------------------------------------------------------------

    def _run(
        self,
        device: str,
        sketch: NetworkConfig,
        holes: Dict[str, Hole],
        requirement: Optional[str],
    ) -> Explanation:
        spec = (
            self.specification.restricted_to(requirement)
            if requirement is not None
            else self.specification
        )
        requirement_name = requirement if requirement is not None else "<all>"
        cache_key = (tuple(sorted(holes)), requirement_name)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        timings: Dict[str, float] = {}

        started = time.perf_counter()
        seed = extract_seed(
            sketch, spec, holes, self.max_path_length, self.link_cost, self.ibgp
        )
        timings["seed"] = time.perf_counter() - started

        started = time.perf_counter()
        simplified = simplify_seed(seed, rules=self.rules)
        timings["simplify"] = time.perf_counter() - started

        started = time.perf_counter()
        projected = project(seed, sketch, limit=self.projection_limit)
        timings["project"] = time.perf_counter() - started

        started = time.perf_counter()
        lift_result = lift(device, sketch, spec, seed, projected, projected.envs)
        timings["lift"] = time.perf_counter() - started

        subspec = Subspecification(
            device=device,
            requirement=requirement_name,
            statements=lift_result.statements,
            lifted=lift_result.lifted,
            low_level=projected.term,
            variables=tuple(sorted(holes)),
        )
        explanation = Explanation(
            device=device,
            requirement=requirement_name,
            seed=seed,
            simplified=simplified,
            projected=projected,
            lift_result=lift_result,
            subspec=subspec,
            timings=timings,
        )
        self._cache[cache_key] = explanation
        return explanation
