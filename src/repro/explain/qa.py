"""Figure 1d-style question-and-answer rendering.

The paper frames explanations as a dialogue (Figure 1d)::

    [admin] I know transit traffic is impossible. I like that.
    [admin] I want to make some changes to R1. What should I keep in mind?
    [tool ] Make sure to drop all routes to Provider1.

This module renders an :class:`~repro.explain.engine.Explanation` in
that conversational form -- a thin presentation layer over the subspec,
useful in the CLI and the examples.
"""

from __future__ import annotations

from typing import List

from ..spec.ast import ForbiddenPath, PathPreference, Reachability, Statement
from .engine import Explanation

__all__ = ["question_and_answer"]


def _statement_sentence(statement: Statement) -> str:
    if isinstance(statement, ForbiddenPath):
        return f"make sure no traffic flows along {statement.pattern}"
    if isinstance(statement, PathPreference):
        ordered = " over ".join(f"[{pattern}]" for pattern in statement.ranked)
        return f"keep preferring {ordered}"
    if isinstance(statement, Reachability):
        return f"keep traffic from {statement.source} reaching {statement.destination} via {statement.pattern}"
    raise TypeError(f"unknown statement {statement!r}")


def question_and_answer(explanation: Explanation) -> str:
    """Render an explanation as the paper's Figure 1d dialogue."""
    device = explanation.device
    requirement = explanation.requirement
    lines: List[str] = [
        f"[admin] I know requirement {requirement} holds. I like that.",
        f"[admin] I want to make some changes to {device}. "
        "What should I keep in mind?",
    ]
    subspec = explanation.subspec
    if subspec.is_empty:
        lines.append(
            f"[tool ] Nothing: {device} cannot affect {requirement}. "
            "Change it freely."
        )
        return "\n".join(lines)
    if not subspec.lifted:
        lines.append(
            "[tool ] The requirement constrains these fields "
            f"({', '.join(subspec.variables)}) as follows:"
        )
        for conjunct in subspec.low_level.conjuncts():
            from ..smt import to_infix

            lines.append(f"[tool ]   {to_infix(conjunct)}")
        return "\n".join(lines)
    for index, statement in enumerate(subspec.statements):
        prefix = "[tool ] " if index == 0 else "[tool ] ... and "
        lines.append(prefix + _statement_sentence(statement) + ".")
    return "\n".join(lines)
