"""Simplification driver (paper Figure 6, step 3).

Wraps the 15-rule rewrite engine with the explanation-specific
bookkeeping the benchmarks report: input/output constraint counts,
per-rule application counts, and an optional cone-of-influence
restriction that keeps only conjuncts (transitively) connected to the
symbolized variables -- an ablation the paper's discussion motivates
(generic simplification leaves "many low-level encoding variables").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..obs import Instrumentation
from ..runtime import Governor
from ..smt import And, RewriteEngine, RewriteRule, RewriteStats, Term
from .seed import SeedSpecification

__all__ = ["SimplifiedSeed", "simplify_seed", "cone_of_influence"]


@dataclass
class SimplifiedSeed:
    """Result of simplifying a seed specification."""

    term: Term
    stats: RewriteStats
    input_constraints: int
    output_constraints: int

    @property
    def constraint_reduction(self) -> float:
        if self.output_constraints == 0:
            return float("inf")
        return self.input_constraints / self.output_constraints

    @property
    def size_reduction(self) -> float:
        return self.stats.reduction_factor


def simplify_seed(
    seed: SeedSpecification,
    rules: Optional[Sequence[RewriteRule]] = None,
    use_cone_of_influence: bool = False,
    governor: Optional[Governor] = None,
    obs: Optional[Instrumentation] = None,
) -> SimplifiedSeed:
    """Apply the rewrite rules (optionally after a cone-of-influence
    restriction to the symbolized variables) until fixpoint."""
    constraint = seed.constraint
    input_constraints = len(constraint.conjuncts())
    if use_cone_of_influence:
        hole_vars = frozenset(
            seed.encoding.holes.variable(name) for name in seed.holes
        )
        constraint = cone_of_influence(constraint, hole_vars)
    stats = RewriteStats()
    engine = RewriteEngine(rules, governor=governor, obs=obs)
    simplified = engine.simplify(constraint, stats)
    # Report sizes relative to the original seed even when the cone
    # restriction already removed conjuncts.
    stats.input_size = seed.constraint.size()
    return SimplifiedSeed(
        term=simplified,
        stats=stats,
        input_constraints=input_constraints,
        output_constraints=len(simplified.conjuncts()),
    )


def cone_of_influence(constraint: Term, anchor_vars: FrozenSet[Term]) -> Term:
    """Keep only conjuncts transitively sharing variables with the
    anchors.

    Conjuncts are connected when they share a free variable; the cone
    is the union of all conjuncts reachable from those mentioning an
    anchor variable.  Conjuncts with no variables at all are dropped
    (they are ground facts the rewrite rules fold anyway).
    """
    conjuncts = constraint.conjuncts()
    frontier = set(anchor_vars)
    selected: List[Term] = []
    remaining = list(conjuncts)
    changed = True
    while changed:
        changed = False
        still_remaining = []
        for conjunct in remaining:
            free = conjunct.free_variables()
            if free & frontier:
                selected.append(conjunct)
                frontier |= free
                changed = True
            else:
                still_remaining.append(conjunct)
        remaining = still_remaining
    return And(*selected)
