"""Interactive what-if sessions.

The paper's introduction frames explanation as part of an *interactive*
refinement loop ("identify and refine problematic parts of the
specification in an interactive manner").  An
:class:`InteractiveSession` keeps a working configuration, answers
explanation questions, and evaluates *what-if* edits: change one
configuration field, see the verification verdict and the routing diff,
and optionally commit the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.config import NetworkConfig
from ..bgp.diff import OutcomeDiff, diff_outcomes
from ..bgp.simulation import ConvergenceError, RoutingOutcome, simulate
from ..runtime import Governor
from ..spec.ast import Specification
from ..verify.verifier import Report, verify
from .engine import Explanation, ExplanationEngine
from .qa import question_and_answer
from .symbolize import ACTION, FieldRef, symbolize

__all__ = ["WhatIfResult", "InteractiveSession"]


@dataclass
class WhatIfResult:
    """The consequences of one hypothetical field edit."""

    ref: FieldRef
    value: object
    report: Optional[Report]
    diff: Optional[OutcomeDiff]
    converged: bool = True

    @property
    def ok(self) -> bool:
        return self.converged and self.report is not None and self.report.ok

    def render(self) -> str:
        header = f"what if {self.ref} = {self.value}?"
        if not self.converged:
            return f"{header}\n  the control plane would oscillate"
        assert self.report is not None and self.diff is not None
        lines = [header, f"  verification: {self.report.summary().splitlines()[0]}"]
        diff_text = self.diff.render()
        lines.extend(f"  {line}" for line in diff_text.splitlines())
        return "\n".join(lines)


class InteractiveSession:
    """A stateful explanation/what-if session over one network.

    >>> session = InteractiveSession(config, specification)
    ... # doctest: +SKIP
    >>> print(session.ask("R1", requirement="Req1"))
    ... # doctest: +SKIP
    >>> result = session.what_if(FieldRef("R1", "out", "P1", 100, ACTION), "permit")
    ... # doctest: +SKIP
    """

    def __init__(
        self,
        config: NetworkConfig,
        specification: Specification,
        max_path_length: Optional[int] = None,
        governor: Optional[Governor] = None,
    ) -> None:
        self._config = config.copy()
        self.specification = specification
        self.max_path_length = max_path_length
        self.governor = governor
        self.history: List[str] = []
        self._engine: Optional[ExplanationEngine] = None
        self._baseline: Optional[RoutingOutcome] = None

    # ------------------------------------------------------------------

    @property
    def config(self) -> NetworkConfig:
        return self._config

    def _get_engine(self) -> ExplanationEngine:
        if self._engine is None:
            self._engine = ExplanationEngine(
                self._config, self.specification, self.max_path_length,
                governor=self.governor,
            )
        return self._engine

    def _get_baseline(self) -> RoutingOutcome:
        if self._baseline is None:
            self._baseline = simulate(self._config, governor=self.governor)
        return self._baseline

    def _invalidate(self) -> None:
        self._engine = None
        self._baseline = None

    # ------------------------------------------------------------------

    def verify(self) -> Report:
        """Verify the current working configuration."""
        report = verify(self._config, self.specification)
        self.history.append(f"verify -> {report.summary().splitlines()[0]}")
        return report

    def ask(
        self,
        router: str,
        requirement: Optional[str] = None,
        fields: Sequence[str] = (ACTION,),
    ) -> str:
        """The Figure 1d dialogue for a router."""
        explanation = self._get_engine().explain_router(
            router, fields=fields, requirement=requirement
        )
        self.history.append(f"ask {router} ({requirement or '<all>'})")
        return question_and_answer(explanation)

    def explain(
        self,
        router: str,
        requirement: Optional[str] = None,
        fields: Sequence[str] = (ACTION,),
    ) -> Explanation:
        """The full explanation object for a router."""
        self.history.append(f"explain {router} ({requirement or '<all>'})")
        return self._get_engine().explain_router(
            router, fields=fields, requirement=requirement
        )

    def what_if(self, ref: FieldRef, value: object) -> WhatIfResult:
        """Evaluate a hypothetical single-field edit (without applying)."""
        candidate = self._edited(ref, value)
        self.history.append(f"what-if {ref} = {value}")
        try:
            outcome = simulate(candidate, governor=self.governor)
        except ConvergenceError:
            return WhatIfResult(ref=ref, value=value, report=None, diff=None, converged=False)
        report = verify(candidate, self.specification)
        diff = diff_outcomes(self._get_baseline(), outcome)
        return WhatIfResult(ref=ref, value=value, report=report, diff=diff)

    def apply(self, ref: FieldRef, value: object) -> Report:
        """Apply a field edit to the working configuration."""
        self._config = self._edited(ref, value)
        self._invalidate()
        self.history.append(f"apply {ref} = {value}")
        return verify(self._config, self.specification)

    # ------------------------------------------------------------------

    def _edited(self, ref: FieldRef, value: object) -> NetworkConfig:
        sketch, holes = symbolize(self._config, [ref])
        name = next(iter(holes))
        hole = holes[name]
        if all(str(value) != str(member) for member in hole.domain):
            raise ValueError(
                f"{value!r} is not an admissible value for {ref} "
                f"(domain: {', '.join(str(m) for m in hole.domain)})"
            )
        return sketch.fill({name: value})
