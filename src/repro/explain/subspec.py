"""The subspecification datatype and its paper-style rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..smt import Term, render_conjunction, to_infix
from ..spec.ast import RequirementBlock, Statement
from ..spec.printer import format_block

__all__ = ["Subspecification"]


@dataclass(frozen=True)
class Subspecification:
    """A localized explanation for one device.

    Attributes
    ----------
    device:
        The router being explained.
    requirement:
        The name of the requirement block this subspec is relative to
        (subspecs are per-requirement, paper Scenario 3).
    statements:
        The lifted statements in the specification language (empty
        tuple + ``lifted`` = the *empty subspecification*: the device
        may do anything).
    lifted:
        Whether lifting into the specification language succeeded.
        When False, ``low_level`` is the best available explanation
        (the paper's preliminary-results situation).
    low_level:
        The projected constraint over the device's symbolized
        variables (Figure 6c's shape).
    variables:
        The symbolized variable names this subspec constrains.
    """

    device: str
    requirement: str
    statements: Tuple[Statement, ...]
    lifted: bool
    low_level: Term
    variables: Tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return self.lifted and not self.statements

    def as_block(self) -> RequirementBlock:
        """The subspec as a requirement block named after the device."""
        return RequirementBlock(self.device, self.statements)

    def render(self) -> str:
        """Paper-style rendering (Figures 2, 4, 5)."""
        if self.is_empty:
            return f"{self.device} {{ }}  // any behaviour satisfies {self.requirement}"
        if self.lifted:
            return format_block(self.as_block())
        header = (
            f"// lifting failed for {self.device} (requirement {self.requirement}); "
            "low-level constraint over "
            f"{', '.join(self.variables) if self.variables else 'no variables'}:"
        )
        return header + "\n" + render_conjunction(self.low_level)

    def __str__(self) -> str:
        return self.render()
