#!/usr/bin/env python3
"""Scenario 1 (paper §2, Figures 1-2): identifying underspecified paths.

The only intent is "no transit traffic" (Figure 1a).  The synthesizer's
configuration at R1 (Figure 1c) blocks *all* routes to Provider 1 --
sufficient, but it also cuts off Provider 1's direct path to the
customer.  The localized explanation makes that visible, and the
administrator refines the specification.

Run:  python examples/scenario1_underspecified.py
"""

from repro.bgp import render_router, simulate
from repro.explain import ACTION, ExplanationEngine, FieldRef, SET_VALUE
from repro.scenarios import CUSTOMER_PREFIX, MANAGED, scenario1
from repro.spec import format_specification, parse
from repro.verify import verify


def main() -> None:
    scenario = scenario1()
    print(f"=== {scenario.description} ===\n")
    print(scenario.topology.to_ascii())

    print("\n=== global specification (Figure 1a) ===")
    print(format_specification(scenario.specification))

    print("\n=== synthesized configuration at R1 (Figure 1c) ===")
    print(render_router(scenario.paper_config.router_config("R1")))

    report = verify(scenario.paper_config, scenario.specification)
    print(f"\nverification: {report.summary()}")

    # The admin's question (Figure 1d): "I want to make some changes
    # to R1. What should I keep in mind?"
    engine = ExplanationEngine(scenario.paper_config, scenario.specification)
    print("\n=== subspecification at R1 (Figure 2) ===")
    explanation = engine.explain_router("R1", fields=(ACTION,), requirement="Req1")
    print(explanation.report())

    # Per-line inspection (paper §4: one variable at a time).  All but
    # the catch-all line have empty subspecifications -- revealing that
    # the config simply blocks everything toward Provider 1.
    print("\n=== per-line subspecifications ===")
    for seq in (1, 100):
        line_explanation = engine.explain_line(
            "R1", "out", "P1", seq, requirement="Req1"
        )
        print(f"line {seq}: {line_explanation.subspec.render()}")
    nh = engine.explain(
        "R1", [FieldRef("R1", "out", "P1", 1, SET_VALUE, 0)], requirement="Req1"
    )
    print(f"set next-hop parameter: {nh.subspec.render()}")

    # The realization: Provider 1 lost its direct path to the customer.
    outcome = simulate(scenario.paper_config)
    path = outcome.forwarding_path("P1", CUSTOMER_PREFIX)
    print(f"\nP1 reaches the customer via: {path}")
    print("... the long way around -- not what the administrator intended.")

    # The fix: add the connectivity requirement and re-verify.
    refined = parse("Fix { (P1 -> R1 -> ... -> C) }", managed=MANAGED)
    refined_report = verify(scenario.paper_config, refined)
    print("\n=== after refining the specification ===")
    print(f"does the old config satisfy the refined intent? {refined_report.summary()}")


if __name__ == "__main__":
    main()
