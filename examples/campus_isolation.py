#!/usr/bin/env python3
"""A second case study: multi-tenant campus isolation.

Shows the library on a topology and intent mix beyond the paper's case
study: tenant isolation, firewall waypointing and shared services on a
campus network.

Run:  python examples/campus_isolation.py
"""

from repro.bgp import simulate, trace_route
from repro.explain import ACTION, ExplanationEngine, question_and_answer
from repro.scenarios import NET_PREFIX, T2_PREFIX, campus_scenario
from repro.spec import format_specification
from repro.verify import verify, verify_under_failures


def main() -> None:
    scenario = campus_scenario()
    print(f"=== {scenario.description} ===\n")
    print(scenario.topology.to_ascii())
    print("\n=== intent ===")
    print(format_specification(scenario.specification))

    report = verify(scenario.paper_config, scenario.specification)
    print(f"\nverification: {report.summary()}")

    outcome = simulate(scenario.paper_config)
    print(f"\nT1 -> internet: {outcome.forwarding_path('T1', NET_PREFIX)}")
    print(f"T1 -> T2 tenant prefix: {outcome.forwarding_path('T1', T2_PREFIX)}")

    print("\n=== why is A1 configured this way? (isolation) ===")
    engine = ExplanationEngine(scenario.paper_config, scenario.specification)
    explanation = engine.explain_router("A1", fields=(ACTION,), requirement="Isolation")
    print(question_and_answer(explanation))

    print("\n=== provenance of T1's internet route ===")
    best = outcome.best("T1", NET_PREFIX)
    print(trace_route(scenario.paper_config, best).render())

    print("\n=== isolation robustness (any single link failure) ===")
    isolation = scenario.specification.restricted_to("Isolation")
    sweep = verify_under_failures(scenario.paper_config, isolation, k=1)
    print(sweep.summary())


if __name__ == "__main__":
    main()
