#!/usr/bin/env python3
"""Scaling sweep: explanation cost vs. topology size (EXT-SCALE).

The paper leaves scalability untested ("remains untested and is an
important area for future research").  This example sweeps synthetic
managed cores of growing size and reports seed-specification size,
simplification time and lifting success.

Run:  python examples/scaling_sweep.py
"""

import time

from repro.explain import ACTION, ExplanationEngine
from repro.scenarios.generators import chain_case, grid_case, ring_case


def run_case(case, max_path_length=7):
    engine = ExplanationEngine(
        case.config, case.specification, max_path_length=max_path_length
    )
    started = time.perf_counter()
    explanation = engine.explain_router(
        case.device, fields=(ACTION,), requirement="NoTransit"
    )
    elapsed = time.perf_counter() - started
    return {
        "case": case.name,
        "routers": len(case.topology),
        "seed_constraints": explanation.seed_constraints,
        "seed_nodes": explanation.seed.size,
        "simplified_nodes": explanation.simplified.term.size(),
        "lifted": explanation.subspec.lifted,
        "seconds": elapsed,
    }


def main() -> None:
    cases = [
        chain_case(2),
        chain_case(4),
        chain_case(6),
        ring_case(4),
        ring_case(6),
        grid_case(2, 2),
        grid_case(2, 3),
    ]
    header = (
        f"{'case':<12} {'routers':>7} {'seed #c':>8} {'seed nodes':>10} "
        f"{'simpl nodes':>11} {'lifted':>6} {'time (s)':>8}"
    )
    print(header)
    print("-" * len(header))
    for case in cases:
        row = run_case(case)
        print(
            f"{row['case']:<12} {row['routers']:>7} {row['seed_constraints']:>8} "
            f"{row['seed_nodes']:>10} {row['simplified_nodes']:>11} "
            f"{str(row['lifted']):>6} {row['seconds']:>8.2f}"
        )
    print(
        "\nSeed size grows with the number of candidate paths (roughly "
        "exponentially in well-connected cores, linearly in chains), "
        "matching the paper's motivation for localized questions."
    )


if __name__ == "__main__":
    main()
