#!/usr/bin/env python3
"""Quickstart: synthesize a configuration, then explain it.

This walks the full pipeline on a minimal custom network (not the
paper's topology -- see the scenario examples for that):

1. build a topology and a specification in the paper's DSL,
2. sketch route-maps with holes and let the synthesizer fill them,
3. verify the result against the global intent,
4. ask the explanation engine for a localized subspecification.

Run:  python examples/quickstart.py
"""

from repro.bgp import (
    DENY,
    Direction,
    Hole,
    NetworkConfig,
    PERMIT,
    RouteMap,
    RouteMapLine,
    render_network,
    simulate,
)
from repro.explain import ACTION, ExplanationEngine
from repro.spec import parse
from repro.synthesis import Synthesizer
from repro.topology import Prefix, Topology
from repro.verify import verify


def build_topology() -> Topology:
    """A tiny transit scenario: two providers around one managed router."""
    topo = Topology("quickstart")
    topo.add_router("LEFT", asn=100, originated=[Prefix("10.1.0.0/24")])
    topo.add_router("MID", asn=200, role="managed")
    topo.add_router("RIGHT", asn=300, originated=[Prefix("10.2.0.0/24")])
    topo.add_link("LEFT", "MID")
    topo.add_link("MID", "RIGHT")
    return topo


def build_sketch(topo: Topology) -> NetworkConfig:
    """MID's export policies are unknown: one permit/deny hole each."""
    sketch = NetworkConfig(topo)
    for neighbor in ("LEFT", "RIGHT"):
        hole = Hole(f"MID.out.{neighbor}.action", (PERMIT, DENY))
        sketch.set_map(
            "MID",
            Direction.OUT,
            neighbor,
            RouteMap(f"MID_to_{neighbor}", (RouteMapLine(seq=10, action=hole),)),
        )
    return sketch


def main() -> None:
    topo = build_topology()

    # The intent: no traffic between LEFT and RIGHT through MID.
    specification = parse(
        """
        NoTransit {
          !(LEFT -> MID -> RIGHT)
          !(RIGHT -> MID -> LEFT)
        }
        """,
        managed=["MID"],
    )

    sketch = build_sketch(topo)
    result = Synthesizer(sketch, specification).synthesize()
    print("=== synthesized hole values ===")
    for name, value in sorted(result.assignment.items()):
        print(f"  {name} = {value}")

    print("\n=== configuration ===")
    print(render_network(result.config))

    report = verify(result.config, specification)
    print("\n=== verification ===")
    print(report.summary())

    outcome = simulate(result.config)
    print("\n=== routing outcome ===")
    print(outcome.summary())

    print("\n=== explanation for MID ===")
    engine = ExplanationEngine(result.config, specification)
    explanation = engine.explain_router("MID", fields=(ACTION,))
    print(explanation.report())


if __name__ == "__main__":
    main()
