#!/usr/bin/env python3
"""Scenario 2 (paper §2, Figures 3-4): resolving ambiguous specifications.

The administrator writes a path preference for destination D1
(Figure 3) intending unlisted paths to serve as *fallbacks*
(interpretation 2).  NetComplete-style synthesis applies
interpretation 1 -- unlisted paths are blocked -- and the network
silently loses redundancy.  The subspecification at R3 (Figure 4)
exposes the drop rules.

Run:  python examples/scenario2_ambiguous.py
"""

from repro.bgp import simulate
from repro.explain import ACTION, ExplanationEngine, FieldRef, SET_VALUE
from repro.scenarios import D1_PREFIX, MANAGED, scenario2
from repro.spec import format_specification, parse
from repro.verify import config_on_topology, verify


def main() -> None:
    scenario = scenario2()
    print(f"=== {scenario.description} ===\n")
    print("=== global specification (Figures 1a + 3) ===")
    print(format_specification(scenario.specification))

    report = verify(scenario.paper_config, scenario.specification)
    print(f"\nverification (BLOCK interpretation): {report.summary()}")

    # Normal operation: the preferred path through P1 is selected.
    outcome = simulate(scenario.paper_config)
    print(f"\nC reaches D1 via: {outcome.forwarding_path('C', D1_PREFIX)}")

    # Fail the preferred path: the second listed path takes over.
    failed = scenario.topology.without_link("R1", "P1")
    outcome = simulate(config_on_topology(scenario.paper_config, failed))
    print(f"with R1-P1 failed:  {outcome.forwarding_path('C', D1_PREFIX)}")

    # Fail both listed paths: the detour C->R3->R1->R2->P2->D1 is
    # physically alive, but interpretation (1) blocked it.
    failed = scenario.topology.without_link("R1", "P1").without_link("R3", "R2")
    outcome = simulate(config_on_topology(scenario.paper_config, failed))
    print(f"with R1-P1 and R3-R2 failed: {outcome.forwarding_path('C', D1_PREFIX)}")
    print("... a blackhole, although a detour exists: the lost redundancy.")

    # What the administrator *meant*: the fallback interpretation.
    fallback_spec = parse(
        """
        Req2 {
          (C -> R3 -> R1 -> P1 -> ... -> D1)
            >> (C -> R3 -> R2 -> P2 -> ... -> D1) fallback
        }
        """,
        managed=MANAGED,
    )
    fallback_report = verify(scenario.paper_config, fallback_spec)
    print("\nverification against the intended (fallback) reading:")
    print(fallback_report.summary())

    # The subspecification at R3 (Figure 4) reveals the drop rules.
    engine = ExplanationEngine(scenario.paper_config, scenario.specification)
    targets = [
        FieldRef("R3", "in", "R1", 10, ACTION),
        FieldRef("R3", "in", "R2", 10, ACTION),
        FieldRef("R3", "in", "R1", 20, SET_VALUE, 0),
        FieldRef("R3", "in", "R2", 20, SET_VALUE, 0),
    ]
    explanation = engine.explain("R3", targets, requirement="Req2")
    print("\n=== subspecification at R3 (Figure 4) ===")
    print(explanation.report())
    print(
        "\nThe two drop rules show the synthesizer is blocking paths the\n"
        "administrator never mentioned -- the ambiguity made visible."
    )

    # -- the resolution: re-synthesize under interpretation (2) --------
    from repro.scenarios import scenario2_fixed
    from repro.synthesis import Synthesizer

    fixed = scenario2_fixed()
    result = Synthesizer(fixed.sketch, fixed.specification).synthesize()
    print("\n=== resolution: re-synthesis under the fallback reading ===")
    for name in sorted(result.assignment):
        print(f"  {name} = {result.assignment[name]}")
    final_report = verify(result.config, fixed.specification)
    print(f"verification: {final_report.summary()}")
    failed = fixed.topology.without_link("R3", "R2").without_link("R1", "P1")
    outcome = simulate(config_on_topology(result.config, failed))
    print(
        "with both listed paths failed, C now reaches D1 via: "
        f"{outcome.forwarding_path('C', D1_PREFIX)}"
    )


if __name__ == "__main__":
    main()
