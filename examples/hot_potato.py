#!/usr/bin/env python3
"""Hot-potato routing: the BGP x IGP interaction.

When BGP attributes tie, routers prefer the exit with the lowest IGP
cost -- so changing a *link weight* silently moves *BGP* traffic. This
example shows the interaction and uses the what-if machinery to inspect
it before committing.

Run:  python examples/hot_potato.py
"""

from repro.bgp import NetworkConfig, diff_outcomes, simulate
from repro.igp import WeightConfig
from repro.topology import Prefix, Topology


def build() -> tuple:
    topo = Topology("twin-exit")
    topo.add_router("S", asn=1)
    topo.add_router("L", asn=2)
    topo.add_router("R", asn=3)
    topo.add_router("T", asn=4, originated=[Prefix("10.2.0.0/24")])
    for a, b in [("S", "L"), ("S", "R"), ("L", "T"), ("R", "T")]:
        topo.add_link(a, b)
    weights = WeightConfig(topo)
    weights.set_weight("S", "L", 10)
    weights.set_weight("S", "R", 1)
    return topo, weights


def main() -> None:
    topo, weights = build()
    config = NetworkConfig(topo)
    prefix = Prefix("10.2.0.0/24")

    print("=== BGP alone (no IGP costs): name tie-break ===")
    outcome = simulate(config)
    print(f"S -> {prefix}: {outcome.forwarding_path('S', prefix)}")

    print("\n=== with IGP costs (hot-potato): cheapest exit wins ===")
    print(f"weights: S-L = 10, S-R = 1")
    before = simulate(config, link_cost=weights.concrete_weight)
    print(f"S -> {prefix}: {before.forwarding_path('S', prefix)}")

    print("\n=== what if the S-R link gets expensive? ===")
    weights.set_weight("S", "R", 50)
    after = simulate(config, link_cost=weights.concrete_weight)
    print(f"weights: S-L = 10, S-R = 50")
    print(f"S -> {prefix}: {after.forwarding_path('S', prefix)}")
    print("\nrouting diff caused by the weight change:")
    print(diff_outcomes(before, after).render())
    print(
        "\nNo BGP configuration changed -- an IGP weight moved BGP\n"
        "traffic. This is why explanations must account for both\n"
        "backends (repro.synthesis for route-maps, repro.igp for\n"
        "weights)."
    )


if __name__ == "__main__":
    main()
