#!/usr/bin/env python3
"""Scenario 3 (paper §2, Figure 5): taming complexity.

With several requirements active at once, the configuration volume is
overwhelming.  Asking about one requirement at a time shows which
routers actually matter for it: for no-transit, R3's subspecification
is *empty* ("R3 can do anything"), so the administrator only needs to
inspect R1 and R2.

Run:  python examples/scenario3_complexity.py
"""

from repro.explain import ACTION, ExplanationEngine
from repro.scenarios import scenario3
from repro.spec import format_specification
from repro.verify import check_modular, verify
from repro.explain import symbolize_router


def main() -> None:
    scenario = scenario3()
    print(f"=== {scenario.description} ===\n")
    print("=== global specification (all requirements) ===")
    print(format_specification(scenario.specification))

    report = verify(scenario.paper_config, scenario.specification)
    print(f"\nverification: {report.summary()}")

    engine = ExplanationEngine(scenario.paper_config, scenario.specification)

    print("\n=== asking about the no-transit requirement only ===")
    for router in ("R1", "R2", "R3"):
        explanation = engine.explain_router(
            router, fields=(ACTION,), requirement="Req1"
        )
        print(f"\n{explanation.subspec.render()}")
        if explanation.lift_result.equivalents:
            rendered = ", ".join(str(s) for s in explanation.lift_result.equivalents)
            print(f"  (equivalently: {rendered})")

    print(
        "\nR3's subspecification is empty: the administrator can skip it\n"
        "and focus validation on R1 and R2 (Figures 2 and 5)."
    )

    # Modular validation: every device configuration the subspec admits
    # keeps the global requirement satisfied.
    print("\n=== modular validation of the R2 explanation ===")
    explanation = engine.explain_router("R2", fields=(ACTION,), requirement="Req1")
    sketch, _ = symbolize_router(scenario.paper_config, "R2", fields=(ACTION,))
    modular = check_modular(explanation, sketch, scenario.specification)
    print(modular.summary())

    # Contrast with the global alternative (paper §6): mining every
    # intent the configuration satisfies describes the whole network,
    # but at a very different size.
    from repro.mining import mine_specification

    mined = mine_specification(
        scenario.paper_config, tuple(sorted(scenario.specification.managed))
    )
    print("\n=== the global alternative: intent mining ===")
    print(mined.summary())
    print(
        "versus 0-1 statements per localized question -- the paper's\n"
        "'taming complexity' argument, quantified."
    )


if __name__ == "__main__":
    main()
