#!/usr/bin/env python3
"""Specification refinement iteration (paper §1 motivation).

"Network synthesis ... is an iterative process where network operators
refine the specifications based on the synthesizer output."  This
example shows the loop the library supports:

1. a first-draft specification turns out to be *unrealizable*;
2. `diagnose` names the minimal set of conflicting statements;
3. the operator repairs the draft and synthesis succeeds;
4. the explanation engine confirms what each router now has to do.

Run:  python examples/specification_refinement.py
"""

from repro.explain import ACTION, ExplanationEngine
from repro.scenarios import MANAGED, scenario1
from repro.spec import format_specification, parse
from repro.synthesis import SynthesisError, Synthesizer, diagnose
from repro.verify import verify


def main() -> None:
    scenario = scenario1()
    sketch = scenario.sketch

    # -- iteration 1: a draft with a hidden contradiction -------------
    draft = parse(
        """
        // forbid the managed network from carrying provider traffic at all
        NoProviderIngress { !(P1 -> R1 -> ... -> C) }

        // ... while also demanding the customer be reachable from P1
        // through R1 (the fix from Scenario 1)
        Connectivity { (P1 -> R1 -> ... -> C) }
        """,
        managed=MANAGED,
    )
    print("=== draft specification ===")
    print(format_specification(draft))

    try:
        Synthesizer(sketch, draft).synthesize()
        raise AssertionError("draft should be unrealizable")
    except SynthesisError:
        print("\nsynthesis failed: the draft is unrealizable.")

    conflict = diagnose(sketch, draft)
    assert conflict is not None
    print("\n=== diagnosis ===")
    print(conflict.render())

    # -- iteration 2: repair -------------------------------------------
    repaired = parse(
        """
        Req1 {
          !(P1 -> ... -> P2)
          !(P2 -> ... -> P1)
        }
        Connectivity { (P1 -> R1 -> ... -> C) }
        """,
        managed=MANAGED,
    )
    print("\n=== repaired specification ===")
    print(format_specification(repaired))

    result = Synthesizer(sketch, repaired).synthesize()
    report = verify(result.config, repaired)
    print(f"\nsynthesis succeeded; verification: {report.summary()}")
    print("chosen hole values:")
    for name, value in sorted(result.assignment.items()):
        print(f"  {name} = {value}")

    # -- confirm the refined behaviour with an explanation --------------
    engine = ExplanationEngine(result.config, repaired)
    explanation = engine.explain_router("R1", fields=(ACTION,), requirement="Req1")
    print("\n=== what must R1 still guarantee for no-transit? ===")
    print(explanation.subspec.render())


if __name__ == "__main__":
    main()
