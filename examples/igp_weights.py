#!/usr/bin/env python3
"""IGP (OSPF-style) weight synthesis and explanation.

NetComplete synthesizes OSPF link weights as well as BGP policies; the
paper's explanation technique applies to any constraint-based
synthesizer.  This example runs the same pipeline on the IGP side:

1. synthesize link weights realizing a path preference,
2. verify via concrete shortest-path forwarding (including failover),
3. explain a link's weight: the acceptable region comes back as a
   crisp arithmetic bound -- the "low-level but meaningful" constraint
   shape of the paper's Figure 6c.

Run:  python examples/igp_weights.py
"""

from repro.bgp import Hole
from repro.igp import (
    WeightConfig,
    compute_forwarding,
    explain_weights,
    shortest_path,
    synthesize_weights,
)
from repro.spec import parse
from repro.topology import Path, Topology


def build_topology() -> Topology:
    topo = Topology("igp-diamond")
    for name in ("S", "L", "R", "T"):
        topo.add_router(name, asn=1)
    for a, b in [("S", "L"), ("L", "T"), ("S", "R"), ("R", "T"), ("L", "R")]:
        topo.add_link(a, b)
    return topo


def main() -> None:
    topo = build_topology()
    spec = parse(
        """
        Pref {
          (S -> R -> T) >> (S -> L -> T)
        }
        """
    )
    print("=== requirement ===")
    print("traffic S -> T prefers the R side; the L side is the backup\n")

    sketch = WeightConfig(topo)
    for link in topo.links:
        sketch.set_weight(link.a, link.b, Hole(f"w_{link.a}{link.b}", (1, 2, 3, 4)))

    result = synthesize_weights(sketch, spec)
    print("=== synthesized weights ===")
    print(result.weights.render())

    forwarding = compute_forwarding(result.weights)
    print("\n=== forwarding ===")
    print(f"S -> T: {forwarding.path('S', 'T')} (cost {forwarding.cost('S', 'T')})")

    reduced = topo.without_link("S", "R")
    failed = WeightConfig(reduced)
    for link in reduced.links:
        failed.set_weight(link.a, link.b, result.weights.concrete_weight(link.a, link.b))
    print(f"with S-R failed: {shortest_path(failed, 'S', 'T')}")

    print("\n=== explanation: why this weight on S-R? ===")
    explanation = explain_weights(result.weights, spec, (("S", "R"),))
    print(explanation.report())
    print(
        "\nThe acceptable region is an interval: the S-R link may get\n"
        "cheaper but not more expensive without breaking the preference."
    )


if __name__ == "__main__":
    main()
