#!/usr/bin/env python3
"""Assume-guarantee summaries and repair analysis (paper §5).

Two generalizations the paper's discussion section calls for:

* **High-level summary of the global behaviors** -- R3's drop rules
  for Scenario 2 rely on R1/R2 tagging routes with provenance
  communities on import.  The summary surfaces that dependency.
* **Explainable network verification** -- when a configuration
  *violates* the intent, repair analysis names the devices that can
  single-handedly restore it, with the smallest concrete fix.

Run:  python examples/assume_guarantee.py
"""

from repro.bgp import Direction, NetworkConfig, PERMIT, RouteMap, RouteMapLine
from repro.explain import repair_candidates, summarize
from repro.scenarios import scenario2
from repro.spec import parse
from repro.topology import Prefix, Topology
from repro.verify import verify


def part1_summary() -> None:
    scenario = scenario2()
    print("=== part 1: assume-guarantee summary (Scenario 2, Req2) ===\n")
    summary = summarize(
        scenario.paper_config, scenario.specification, "R3", "Req2"
    )
    print(summary.render())
    print(
        "\nReading: R3's community-based drop rules only protect the\n"
        "preference if R1 and R2 keep their provenance-tagging import\n"
        "lines -- the exact dependency the paper's §5 example describes."
    )


def part2_repair() -> None:
    print("\n=== part 2: repair analysis on a violating network ===\n")
    topo = Topology("hub")
    topo.add_router("C", asn=100, originated=[Prefix("10.0.0.0/24")])
    topo.add_router("HUB", asn=200, role="managed")
    topo.add_router("P1", asn=500, originated=[Prefix("10.1.0.0/24")])
    topo.add_router("P2", asn=600, originated=[Prefix("10.2.0.0/24")])
    for a, b in [("C", "HUB"), ("HUB", "P1"), ("HUB", "P2")]:
        topo.add_link(a, b)
    spec = parse(
        "NoTransit { !(P1 -> HUB -> P2) !(P2 -> HUB -> P1) }", managed=["HUB"]
    )
    config = NetworkConfig(topo)
    for provider in ("P1", "P2"):
        config.set_map(
            "HUB",
            Direction.OUT,
            provider,
            RouteMap(
                f"HUB_to_{provider}",
                (
                    RouteMapLine(
                        seq=10,
                        action=PERMIT,
                        match_attr="dst-prefix",
                        match_value=Prefix("10.0.0.0/24"),
                    ),
                    RouteMapLine(seq=100, action=PERMIT),
                ),
            ),
        )

    report = verify(config, spec)
    print(f"verification: {report.summary()}\n")
    repairs = repair_candidates(config, spec)
    print(repairs.render())


def main() -> None:
    part1_summary()
    part2_repair()


if __name__ == "__main__":
    main()
